"""The type-query server from a client's point of view.

Connects to a running server (``--port``), or starts one in-process when no
port is given, then walks the whole verb surface:

1. ``analyze`` -- submit a mini-C program, get a content-addressed program id;
2. ``query`` -- fetch one procedure's signature, type scheme and struct
   layout, and check them against an in-process ``analyze_program`` run;
3. ``stats`` with a program id -- the per-stage solver timings (graph build,
   saturation, simplification queries, sketches) of that analysis;
4. ``session.open`` / ``session.edit`` -- edit one function and watch the
   server re-solve only the invalidation cone;
5. ``corpus`` -- submit two related programs in one batch and observe shared
   summary-store hits.

Run against an external server (exits non-zero on any mismatch, so CI can use
it as a smoke test)::

    python -m repro.server --port 8791 &
    python examples/type_server.py --port 8791

Or self-contained::

    python examples/type_server.py

See the top-level README.md for the protocol reference.
"""

import argparse
import asyncio
import os
import sys
import threading

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import analyze_program
from repro.frontend import compile_c
from repro.server import ServerConfig, TypeQueryClient, TypeQueryServer

LIBRARY = """
struct node { struct node * next; int value; };

struct node * push_front(struct node * head, int value) {
    struct node * n;
    n = (struct node *) malloc(sizeof(struct node));
    n->value = value;
    n->next = head;
    return n;
}

int total(const struct node * head) {
    int sum;
    sum = 0;
    while (head != NULL) {
        sum = sum + head->value;
        head = head->next;
    }
    return sum;
}
"""

DRIVER = LIBRARY + """
int demo(int seed) {
    struct node * head;
    head = push_front(NULL, seed);
    head = push_front(head, seed + 1);
    return total(head);
}
"""

EDITED = DRIVER.replace("return total(head);", "return total(head) + 1;")


def start_in_process_server() -> int:
    """Run a daemon thread hosting the server; returns the bound port."""
    started = threading.Event()
    info = {}

    def run():
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def main():
            server = TypeQueryServer(ServerConfig(port=0))
            _, port = await server.start()
            info["port"] = port
            started.set()
            await server.serve_forever()

        loop.run_until_complete(main())

    threading.Thread(target=run, daemon=True).start()
    assert started.wait(60), "in-process server failed to start"
    return info["port"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="connect to a running server (default: start one in-process)")
    args = parser.parse_args()

    port = args.port if args.port is not None else start_in_process_server()
    where = "external" if args.port is not None else "in-process"

    failures = 0
    with TypeQueryClient(args.host, port, connect_retries=50) as client:
        hello = client.ping()
        print(f"connected to {hello['server']} v{hello['version']} ({where}, port {port})")

        # -- 1. analyze ------------------------------------------------------
        result = client.analyze(LIBRARY, kind="c")
        program_id = result["program_id"]
        print(f"\n=== analyze: program {program_id[:16]}... ===")
        for name, signature in result["signatures"].items():
            print(f"  {signature}")

        # -- 2. query + fidelity check --------------------------------------
        print("\n=== query 'total': scheme and struct layout ===")
        procedure = client.query(program_id, "total")
        print(f"  {procedure['signature']}")
        print(f"  scheme: {procedure['scheme_text']}")
        for name, struct in procedure["structs"].items():
            print(f"  layout: {struct['c']}")

        reference = analyze_program(compile_c(LIBRARY).program)
        if procedure["signature"] != reference.signature("total"):
            print("MISMATCH: remote signature differs from in-process result")
            failures += 1
        if procedure["scheme_text"] != str(reference.scheme("total")):
            print("MISMATCH: remote scheme differs from in-process result")
            failures += 1

        # -- 3. per-program stage timings ------------------------------------
        # (asked before the corpus step below re-admits this program id with a
        # fully cache-served -- and therefore all-zero -- timing record)
        print("\n=== stats: where did the solver spend its time? ===")
        timing = client.stats(program_id)
        stage = timing["stage_seconds"]
        for stage_name in ("graph", "saturate", "simplify", "sketch"):
            print(f"  {stage_name:<9} {stage[f'{stage_name}_seconds'] * 1000:8.2f} ms")
        print(
            f"  total     {stage['total_seconds'] * 1000:8.2f} ms over "
            f"{stage['sccs_timed']} SCCs "
            f"({stage['saturation_edges']} saturation edges, "
            f"{stage['graph_edges']} graph edges)"
        )
        if stage["sccs_timed"] == 0:
            print("MISMATCH: a cold analysis must have timed at least one SCC solve")
            failures += 1

        # -- 4. incremental session -----------------------------------------
        print("\n=== session: edit one function, re-solve only its cone ===")
        opened = client.session_open(DRIVER, kind="c")
        session_id = opened["session_id"]
        print(f"  opened session {session_id[:8]}... ({len(opened['procedures'])} procedures)")
        edited = client.session_edit(session_id, EDITED, kind="c")
        print(f"  edited 'demo': invalidated = {edited['invalidated_procedures']}")
        print(f"                 re-solved   = {edited['solved_procedures']}")
        print(f"                 from cache  = {edited['cached_procedures']}")
        if set(edited["invalidated_procedures"]) != {"demo"}:
            print("MISMATCH: editing a leaf caller should invalidate only itself")
            failures += 1
        client.session_close(session_id)

        # -- 5. corpus batch -------------------------------------------------
        print("\n=== corpus: two programs, one shared summary store ===")
        batch = client.corpus(
            {
                "library": {"source": LIBRARY, "kind": "c"},
                "driver": {"source": DRIVER, "kind": "c"},
            }
        )
        for name, entry in batch["programs"].items():
            print(
                f"  {name:<8} {len(entry['procedures'])} procedures, "
                f"{entry['cache_hits']} summary hits, {entry['cache_misses']} misses"
            )
        driver_hits = batch["programs"]["driver"]["cache_hits"]
        if driver_hits == 0:
            print("MISMATCH: the driver shares the library and should hit its summaries")
            failures += 1

        stats = client.stats()
        if stats.get("role") == "router":
            # Pointed at a fleet: the aggregate stats are topology-shaped.
            healthy = sum(1 for s in stats["shards"].values() if s.get("healthy"))
            print(
                f"\nrouter stats: {stats['requests_served']} requests over "
                f"{healthy}/{len(stats['shards'])} healthy shards, "
                f"{stats['reanalyses']} failover re-analyses"
            )
        else:
            print(
                f"\nserver stats: {stats['requests_served']} requests, "
                f"registry {stats['registry']['programs']} programs "
                f"(hit rate {stats['registry']['hit_rate']:.0%}), "
                f"store hit rate {stats['store'].get('hit_rate', 0.0):.0%}"
            )

    if failures:
        print(f"\n{failures} mismatch(es) -- FAILED")
        return 1
    print("\nall remote answers match in-process analysis -- OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
