"""Recursive data-structure recovery from compiled (type-erased) mini-C.

This example does what the paper's evaluation does in miniature:

1. compile a small C program with the bundled mini-C compiler (which records
   the declared types as ground truth and then erases them),
2. run Retypd on the resulting machine code only,
3. print the recovered signatures and structures next to the original source.

The program builds and traverses a binary-tree-ish linked structure, so the
interesting outputs are the recursive struct and the const annotations.

Run with::

    python examples/linked_list_recovery.py
"""

from repro import analyze_program
from repro.frontend import compile_c

SOURCE = """
struct node {
    struct node * next;
    int key;
    int payload;
};

struct node * node_new(int key, int payload) {
    struct node * n;
    n = (struct node *) malloc(sizeof(struct node));
    n->next = NULL;
    n->key = key;
    n->payload = payload;
    return n;
}

struct node * list_push(struct node * head, int key, int payload) {
    struct node * n;
    n = node_new(key, payload);
    n->next = head;
    return n;
}

int list_length(const struct node * head) {
    int n;
    n = 0;
    while (head != NULL) {
        n = n + 1;
        head = head->next;
    }
    return n;
}

int list_sum(const struct node * head) {
    int total;
    total = 0;
    while (head != NULL) {
        total = total + head->payload;
        head = head->next;
    }
    return total;
}

const struct node * list_find(const struct node * head, int key) {
    while (head != NULL) {
        if (head->key == key) {
            return head;
        }
        head = head->next;
    }
    return NULL;
}

void list_free(struct node * head) {
    while (head != NULL) {
        struct node * next;
        next = head->next;
        free(head);
        head = next;
    }
}
"""


def main() -> None:
    compiled = compile_c(SOURCE)
    print(f"compiled {compiled.program.instruction_count} instructions, "
          f"{len(compiled.program.procedures)} procedures; types erased.\n")

    types = analyze_program(compiled.program)

    print("=== recovered signatures (from machine code only) ===")
    print(types.report())
    print()

    print("=== ground truth (what the source declared) ===")
    for name, truth in compiled.ground_truth.functions.items():
        params = ", ".join(str(ctype) for _, ctype in truth.params)
        ret = truth.return_type or "void"
        print(f"{ret} {name}({params});")
    print()

    recursive = [
        name
        for name, info in types.functions.items()
        if any(s.is_recursive() for s in info.result.formal_in_sketches.values())
    ]
    print(f"functions whose parameter sketches are recursive: {sorted(recursive)}")


if __name__ == "__main__":
    main()
