"""Const-annotation recovery and user-defined semantic tags (sections 2.8, 3.5, 6.4).

Two Retypd features beyond plain C types are shown here:

* a pointer parameter that is only ever read through gets a ``const``
  annotation (the paper recovers 98% of source-level const annotations);
* the auxiliary lattice is user-extensible: library models can seed semantic
  tags such as ``#FileDescriptor`` or a custom ``#packet-length``, and those
  tags propagate through the program alongside ordinary types.

Run with::

    python examples/const_and_tags.py
"""

from repro import analyze_program
from repro.core import default_lattice
from repro.frontend import compile_c
from repro.typegen.externs import standard_externs, ExternSignature

SOURCE = """
struct packet {
    int length;
    int flags;
    char * body;
};

int packet_length(const struct packet * p) {
    return p->length;
}

void packet_set_flags(struct packet * p, int flags) {
    p->flags = flags;
}

int packet_send(int fd, const struct packet * p) {
    int sent;
    sent = write(fd, p, packet_length(p));
    return sent;
}

int packet_forward(const struct packet * p, const char * path) {
    int fd;
    int result;
    fd = open(path, 1);
    if (fd < 0) {
        return 0 - 1;
    }
    result = packet_send(fd, p);
    close(fd);
    return result;
}
"""


def main() -> None:
    compiled = compile_c(SOURCE)

    # Extend the lattice with a custom semantic tag and teach the analysis that
    # `packet_length`-style values carry it (section 2.8: user-adjustable
    # type hierarchy).  Here we seed it through an extern-style model of
    # `write`, whose third argument is a byte count.
    lattice = default_lattice()
    lattice.add_tag("#packet-length", "int")
    externs = standard_externs()
    externs["write"] = ExternSignature(
        name="write",
        stack_params=3,
        constraints=(
            "write.in_stack0 <= int",
            "write.in_stack0 <= #FileDescriptor",
            "write.in_stack4.load <= TOP",
            "write.in_stack8 <= #packet-length",
            "ssize_t <= write.out_eax",
        ),
    )

    types = analyze_program(compiled.program, lattice=lattice, externs=externs)

    print("=== recovered signatures ===")
    print(types.report())
    print()

    print("=== const recovery vs ground truth ===")
    for name, truth in compiled.ground_truth.functions.items():
        info = types[name]
        for index, (location, declared) in enumerate(truth.params):
            if not truth.param_const[index]:
                continue
            inferred = (
                info.function_type.params[info.param_locations.index(location)]
                if location in info.param_locations
                else None
            )
            recovered = getattr(inferred, "const", False)
            print(f"{name}({location}): declared const -> recovered const = {recovered}")
    print()

    print("=== semantic tags on packet_length's return and write's size ===")
    scheme_text = str(types.scheme("packet_length"))
    print(scheme_text)
    print()
    print("fd parameters that picked up #FileDescriptor:")
    for name in ("packet_send", "packet_forward"):
        print(f"  {name}: {types.signature(name)}")


if __name__ == "__main__":
    main()
