"""Tests for the comparison engines (unification, TIE-like, propagation)."""

import pytest

from repro.baselines import (
    ALL_ENGINES,
    PropagationEngine,
    RetypdEngine,
    TIEEngine,
    UnificationEngine,
    truncate_sketch,
    whole_program_constraints,
)
from repro.core import LoadLabel, PointerType, Sketch, default_lattice, field
from repro.core.ctype import IntType, TypedefType
from repro.frontend import compile_c

LOAD = LoadLabel()

SOURCE = """
struct item {
    struct item * next;
    int fd;
};

int close_all(struct item * head) {
    int failures;
    failures = 0;
    while (head != NULL) {
        failures = failures + close(head->fd);
        head = head->next;
    }
    return failures;
}

int count(const struct item * head) {
    int n;
    n = 0;
    while (head != NULL) {
        n = n + 1;
        head = head->next;
    }
    return n;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_c(SOURCE).program


def test_engine_registry_complete():
    assert set(ALL_ENGINES) == {"retypd", "unification", "tie", "propagation"}


def test_all_engines_produce_signatures(program):
    for name, engine_cls in ALL_ENGINES.items():
        types = engine_cls().analyze(program)
        assert "close_all" in types, name
        assert "count" in types, name
        assert types.signature("count"), name


def test_whole_program_constraints_are_monomorphic(program):
    inputs, combined, lattice = whole_program_constraints(program)
    assert set(inputs) == {"close_all", "count"}
    bases = {c.left.base for c in combined} | {c.right.base for c in combined}
    # the libc callsite is instantiated under a callsite-specific base and its
    # seeded tags are present
    close_bases = [b for b in bases if b.startswith("close$")]
    assert close_bases
    assert "#FileDescriptor" in bases


def test_unification_recovers_structure(program):
    types = UnificationEngine().analyze(program)
    param = types["count"].param_type(0)
    assert isinstance(param, PointerType)


def test_retypd_recovers_file_descriptor_tag(program):
    types = RetypdEngine().analyze(program)
    structs = types.struct_definitions()
    param = types["close_all"].param_type(0)
    assert isinstance(param, PointerType)


def test_tie_truncation_limits_depth():
    lattice = default_lattice()
    sketch = Sketch(lattice)
    deep = sketch.add_path([LOAD, field(32, 0), LOAD, field(32, 0)])
    truncated = truncate_sketch(sketch, max_depth=2)
    assert truncated.accepts([LOAD, field(32, 0)])
    assert not truncated.accepts([LOAD, field(32, 0), LOAD])


def test_tie_engine_does_not_produce_recursive_sketches(program):
    types = TIEEngine().analyze(program)
    for info in types.functions.values():
        for sketch in info.result.formal_in_sketches.values():
            assert not sketch.is_recursive()


def test_propagation_defaults_to_int(program):
    types = PropagationEngine().analyze(program)
    count_param = types["count"].param_type(0)
    # the propagation family recovers no structure for struct pointers that are
    # not passed directly to a known library function
    assert isinstance(count_param, (IntType, TypedefType)) or isinstance(
        count_param, PointerType
    )
    close_all = types["close_all"]
    assert isinstance(close_all.return_type, (IntType, TypedefType))
