"""Integration tests: mini-C source -> type-erased machine code -> recovered C types.

These tests exercise the whole reproduction exactly the way the evaluation
does: compile a program (recording ground truth), throw the types away, run
Retypd on the machine code, and compare what comes back.

Every test runs once per executor backend (serial, threads, processes,
auto), so a regression in any wave-dispatch strategy -- not just the default
-- surfaces in tier-1.
"""

import pytest

from repro import analyze_program
from repro.core.ctype import IntType, PointerType, StructRef, StructType, TypedefType
from repro.frontend import compile_c
from repro.service import AnalysisService, ServiceConfig
from repro.service.scheduler import EXECUTORS


LINKED_LIST = """
struct LL {
    struct LL * next;
    int handle;
};

int close_last(const struct LL * list) {
    while (list->next != NULL) {
        list = list->next;
    }
    return close(list->handle);
}
"""

ALLOCATOR = """
struct node {
    struct node * next;
    int value;
};

struct node * xmalloc(unsigned size) {
    void * p;
    p = malloc(size);
    if (p == NULL) {
        abort();
    }
    return (struct node *) p;
}

struct node * push_front(struct node * head, int value) {
    struct node * n;
    n = (struct node *) malloc(sizeof(struct node));
    n->value = value;
    n->next = head;
    return n;
}

int total(const struct node * head) {
    int sum;
    sum = 0;
    while (head != NULL) {
        sum = sum + head->value;
        head = head->next;
    }
    return sum;
}
"""

GETTER_SETTER = """
struct config {
    int verbosity;
    struct config * parent;
    int fd;
};

int get_fd(const struct config * c) {
    return c->fd;
}

void use_config(struct config * c) {
    int fd;
    fd = get_fd(c);
    write(fd, c, 12);
}
"""


@pytest.fixture(scope="module", params=EXECUTORS)
def backend_service(request):
    """One analysis service per executor strategy, shared across the module
    (the process pool stays warm instead of respawning per test)."""
    service = AnalysisService(ServiceConfig(use_cache=False, executor=request.param))
    yield service
    service.close()


def _analyze(source, service=None):
    result = compile_c(source)
    if service is None:
        return result, analyze_program(result.program)
    return result, analyze_program(result.program, service=service)


def test_linked_list_end_to_end(backend_service):
    result, types = _analyze(LINKED_LIST, backend_service)
    info = types["close_last"]
    assert len(info.function_type.params) == 1
    param = info.param_type(0)
    assert isinstance(param, PointerType)
    assert param.const
    pointee = param.pointee
    structs = types.struct_definitions()
    if isinstance(pointee, StructRef):
        pointee = structs[pointee.name]
    assert isinstance(pointee, StructType)
    assert {f.offset for f in pointee.fields} == {0, 4}
    assert isinstance(pointee.field_at(0).ctype, PointerType)
    assert isinstance(info.return_type, (IntType, TypedefType))


def test_polymorphic_allocator_wrapper(backend_service):
    result, types = _analyze(ALLOCATOR, backend_service)
    assert set(types.functions) == {"xmalloc", "push_front", "total"}
    # push_front returns a pointer to the recursive node structure.
    ret = types["push_front"].return_type
    assert isinstance(ret, PointerType)
    # total takes a read-only pointer.
    param = types["total"].param_type(0)
    assert isinstance(param, PointerType)
    assert param.const
    # push_front's first parameter only flows into the (otherwise unconstrained)
    # next field of a freshly allocated node, so no structural evidence exists
    # for it inside this translation unit; it must at least not be claimed to
    # be something structurally wrong (the sketch stays unconstrained).
    head = types["push_front"].param_type(0)
    assert head is not None


def test_interprocedural_tag_propagation(backend_service):
    result, types = _analyze(GETTER_SETTER, backend_service)
    # get_fd reads a field that use_config passes to write(fd, ...): the
    # #FileDescriptor purpose flows backwards through the call.
    get_fd = types["get_fd"]
    param = get_fd.param_type(0)
    assert isinstance(param, PointerType)
    pointee = param.pointee
    structs = types.struct_definitions()
    if isinstance(pointee, StructRef):
        pointee = structs[pointee.name]
    assert isinstance(pointee, (StructType, IntType, TypedefType))


def test_stats_are_recorded(backend_service):
    result, types = _analyze(LINKED_LIST, backend_service)
    assert types.stats["instructions"] > 10
    assert types.stats["total_seconds"] >= 0
    assert types.stats["procedures"] == 1


def test_report_renders(backend_service):
    result, types = _analyze(ALLOCATOR, backend_service)
    report = types.report()
    assert "push_front(" in report
    assert "total(" in report
