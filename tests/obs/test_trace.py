"""The span tracer: nesting, cross-boundary stitching, export round trips."""

import json
import os
import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    TRACE_FORMAT,
    Tracer,
    get_tracer,
    load_jsonl,
    set_tracer,
    tracing,
)


def by_name(tracer):
    index = {}
    for span in tracer.spans():
        index.setdefault(span["name"], []).append(span)
    return index


# ---------------------------------------------------------------------------
# Nesting
# ---------------------------------------------------------------------------


def test_spans_nest_on_one_thread():
    tracer = Tracer()
    with tracer.span("outer", depth=0):
        with tracer.span("middle") as middle:
            middle.set("k", "v")
            with tracer.span("inner"):
                pass
    spans = {span["name"]: span for span in tracer.spans()}
    assert spans["outer"]["parent_id"] is None
    assert spans["middle"]["parent_id"] == spans["outer"]["span_id"]
    assert spans["inner"]["parent_id"] == spans["middle"]["span_id"]
    assert spans["outer"]["attrs"] == {"depth": 0}
    assert spans["middle"]["attrs"] == {"k": "v"}
    assert all(span["trace_id"] == tracer.trace_id for span in spans.values())
    assert all(span["dur"] >= 0 for span in spans.values())


def test_sibling_threads_do_not_nest_under_each_other():
    tracer = Tracer()
    barrier = threading.Barrier(2)

    def work(name):
        with tracer.span(name):
            barrier.wait(timeout=10)  # both spans open at once

    threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    spans = tracer.spans()
    assert len(spans) == 2
    assert all(span["parent_id"] is None for span in spans)
    assert len({span["span_id"] for span in spans}) == 2


def test_exception_marks_span_and_propagates():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    (span,) = tracer.spans()
    assert span["attrs"]["error"] == "RuntimeError"


def test_detached_spans_never_enter_the_stack():
    tracer = Tracer()
    root = tracer.start_span("server.analyze", verb="analyze")
    with tracer.span("stacked"):
        pass
    tracer.finish(root)
    spans = {span["name"]: span for span in tracer.spans()}
    # The detached span was open the whole time but must not have become
    # the stacked span's parent (event-loop coroutines share one thread).
    assert spans["stacked"]["parent_id"] is None
    assert spans["server.analyze"]["parent_id"] is None
    assert spans["server.analyze"]["attrs"] == {"verb": "analyze"}


# ---------------------------------------------------------------------------
# Cross-thread / cross-process stitching
# ---------------------------------------------------------------------------


def test_attach_parents_under_a_foreign_span():
    tracer = Tracer()
    captured = {}

    def worker(context):
        with tracer.attach(context):
            with tracer.span("child"):
                pass

    with tracer.span("parent") as parent:
        captured = tracer.current_context()
        thread = threading.Thread(target=worker, args=(captured,))
        thread.start()
        thread.join()
    assert captured == {
        "format": TRACE_FORMAT,
        "trace_id": tracer.trace_id,
        "span_id": parent.span_id,
    }
    spans = {span["name"]: span for span in tracer.spans()}
    assert spans["child"]["parent_id"] == spans["parent"]["span_id"]


def test_attach_none_is_a_no_op():
    tracer = Tracer()
    assert tracer.current_context() is None  # nothing open
    with tracer.attach(None):
        with tracer.span("orphan"):
            pass
    (span,) = tracer.spans()
    assert span["parent_id"] is None


def test_adopt_merges_worker_spans_verbatim():
    parent = Tracer()
    with parent.span("scheduler.wave") as wave:
        shipped = parent.current_context()
    # Simulate the worker process: its own tracer, same trace id, parented
    # under the shipped wave span -- exactly what procpool does.
    worker = Tracer(trace_id=shipped["trace_id"])
    with worker.attach(shipped):
        with worker.span("procpool.solve_scc", scc="f"):
            pass
    assert parent.adopt(worker.spans()) == 1
    spans = {span["name"]: span for span in parent.spans()}
    assert spans["procpool.solve_scc"]["parent_id"] == wave.span_id
    assert spans["procpool.solve_scc"]["trace_id"] == parent.trace_id


# ---------------------------------------------------------------------------
# Export round trips
# ---------------------------------------------------------------------------


def test_jsonl_round_trip(tmp_path):
    tracer = Tracer()
    with tracer.span("a", n=1):
        with tracer.span("b"):
            pass
    path = tracer.export_jsonl(str(tmp_path / "trace.jsonl"))
    header, spans = load_jsonl(path)
    assert header == {
        "format": TRACE_FORMAT,
        "trace_id": tracer.trace_id,
        "spans": 2,
    }
    assert spans == tracer.spans()


def test_load_jsonl_rejects_foreign_files(tmp_path):
    bogus = tmp_path / "nope.jsonl"
    bogus.write_text('{"format": "something-else"}\n')
    with pytest.raises(ValueError):
        load_jsonl(str(bogus))
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError):
        load_jsonl(str(empty))


def test_chrome_trace_schema(tmp_path):
    tracer = Tracer()
    with tracer.span("parent"):
        with tracer.span("child", scc="f,g"):
            pass
    doc = tracer.chrome_trace()
    assert doc["otherData"] == {"format": TRACE_FORMAT, "trace_id": tracer.trace_id}
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert [m["args"]["name"] for m in meta] == ["repro"]  # one pid: this one
    assert meta[0]["pid"] == os.getpid()
    assert len(complete) == 2
    for event in complete:
        assert event["cat"] == "repro"
        assert event["ts"] >= 0 and event["dur"] >= 0  # µs, relative origin
        assert event["args"]["span_id"]
    child = next(e for e in complete if e["name"] == "child")
    parent = next(e for e in complete if e["name"] == "parent")
    assert child["args"]["parent_id"] == parent["args"]["span_id"]
    assert child["args"]["scc"] == "f,g"
    # The file export is the same document, JSON-serializable end to end.
    path = tracer.export_chrome(str(tmp_path / "trace.json"))
    with open(path) as handle:
        assert json.load(handle)["otherData"]["trace_id"] == tracer.trace_id


# ---------------------------------------------------------------------------
# Installation scope and the null default
# ---------------------------------------------------------------------------


def test_tracing_scope_installs_and_restores():
    assert get_tracer() is NULL_TRACER
    with tracing() as tracer:
        assert get_tracer() is tracer
        with tracing(Tracer()) as nested:
            assert get_tracer() is nested
        assert get_tracer() is tracer
    assert get_tracer() is NULL_TRACER


def test_set_tracer_none_restores_null():
    previous = set_tracer(Tracer())
    assert previous is NULL_TRACER
    set_tracer(None)
    assert get_tracer() is NULL_TRACER


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    with NULL_TRACER.span("x", a=1) as span:
        span.set("b", 2)
    assert NULL_TRACER.spans() == []
    assert NULL_TRACER.current_context() is None
    assert NULL_TRACER.adopt([{"name": "x"}]) == 0
    with NULL_TRACER.attach({"span_id": "1.1"}):
        pass
    NULL_TRACER.finish(NULL_TRACER.start_span("y"))
    assert NULL_TRACER.spans() == []
