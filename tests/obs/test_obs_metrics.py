"""The metrics registry: instruments, quantile estimation, rendering.

The histogram's percentile math is property-tested: whatever latencies go
in, the estimates must stay inside the observed range, respect quantile
monotonicity, and agree exactly with the bucket bookkeeping — those are the
invariants `BENCH_server.json` and the server's ``metrics`` verb rely on.
"""

import math
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    DEFAULT_BUCKETS,
    METRICS_FORMAT,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    install_default,
    set_registry,
)

latencies = st.lists(
    st.floats(min_value=1e-6, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


# ---------------------------------------------------------------------------
# Counter / gauge basics
# ---------------------------------------------------------------------------


def test_counter_accumulates_and_rejects_negative():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.snapshot() == {"type": "counter", "value": 3.5}


def test_gauge_moves_both_ways():
    gauge = Gauge()
    gauge.set(4)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value == 3
    assert gauge.snapshot() == {"type": "gauge", "value": 3}


def test_counter_thread_safety():
    counter = Counter()

    def bump():
        for _ in range(1000):
            counter.inc()

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 8000


# ---------------------------------------------------------------------------
# Histogram properties
# ---------------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(values=latencies)
def test_histogram_bookkeeping_matches_observations(values):
    hist = Histogram()
    for value in values:
        hist.observe(value)
    assert hist.count == len(values)
    assert math.isclose(hist.sum, sum(values), rel_tol=1e-9, abs_tol=1e-12)
    snap = hist.snapshot()
    assert sum(bucket["count"] for bucket in snap["buckets"]) == len(values)
    assert snap["min"] == min(values)
    assert snap["max"] == max(values)


@settings(max_examples=200, deadline=None)
@given(values=latencies, q=st.floats(min_value=0.0, max_value=1.0))
def test_histogram_quantile_stays_in_observed_range(values, q):
    hist = Histogram()
    for value in values:
        hist.observe(value)
    estimate = hist.quantile(q)
    assert estimate is not None
    assert min(values) - 1e-12 <= estimate <= max(values) + 1e-12


@settings(max_examples=100, deadline=None)
@given(
    values=latencies,
    q1=st.floats(min_value=0.0, max_value=1.0),
    q2=st.floats(min_value=0.0, max_value=1.0),
)
def test_histogram_quantiles_are_monotone(values, q1, q2):
    if q1 > q2:
        q1, q2 = q2, q1
    hist = Histogram()
    for value in values:
        hist.observe(value)
    assert hist.quantile(q1) <= hist.quantile(q2) + 1e-12


def test_histogram_exact_at_known_distribution():
    hist = Histogram(buckets=(0.1, 1.0, 10.0))
    for value in (0.2, 0.4, 0.6, 0.8):
        hist.observe(value)
    # One bucket (0.1, 1.0] holds all four samples; its edges clamp to the
    # observed [0.2, 0.8], so the median interpolates to the true midpoint.
    assert hist.quantile(0.5) == pytest.approx(0.5)
    assert hist.percentiles()["p99"] <= 0.8


def test_histogram_empty_and_validation():
    hist = Histogram()
    assert hist.quantile(0.5) is None
    assert hist.percentiles() == {"p50": None, "p95": None, "p99": None}
    with pytest.raises(ValueError):
        hist.quantile(1.5)
    with pytest.raises(ValueError):
        Histogram(buckets=())
    with pytest.raises(ValueError):
        Histogram(buckets=(2.0, 1.0))


@given(
    st.floats(min_value=1e-9, max_value=1e6, allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_histogram_single_sample_quantile_is_the_sample(value, q):
    """One observation: every quantile IS that observation -- p99 of a single
    sample must equal the sample, never an interpolation past it."""
    hist = Histogram()
    hist.observe(value)
    assert hist.quantile(q) == value
    assert all(v == value for v in hist.percentiles().values())


@given(
    st.floats(min_value=1e-9, max_value=1e6, allow_nan=False, allow_infinity=False),
    st.integers(min_value=1, max_value=50),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_histogram_degenerate_distribution_quantile_is_the_value(value, count, q):
    """All-equal observations collapse to the value for every quantile."""
    hist = Histogram()
    for _ in range(count):
        hist.observe(value)
    assert hist.quantile(q) == value


def test_latency_summary_edge_cases():
    """The benchmark's summary helper mirrors the histogram's edge behavior:
    count=0 yields None percentiles (never a crash), and a single sample's
    p50/p95/p99 all equal the sample."""
    import importlib.util
    import pathlib

    path = (
        pathlib.Path(__file__).resolve().parents[2]
        / "benchmarks"
        / "bench_server_throughput.py"
    )
    spec = importlib.util.spec_from_file_location("bench_server_throughput", path)
    bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench)

    empty = bench.latency_summary([])
    assert empty["count"] == 0
    assert empty["mean_seconds"] is None
    assert empty["p50"] is None and empty["p95"] is None and empty["p99"] is None

    single = bench.latency_summary([0.123])
    assert single["count"] == 1
    assert single["mean_seconds"] == pytest.approx(0.123)
    assert single["p50"] == single["p95"] == single["p99"] == 0.123
    assert single["min_seconds"] == single["max_seconds"] == 0.123


def test_histogram_overflow_bucket():
    hist = Histogram(buckets=(1.0,))
    hist.observe(50.0)
    snap = hist.snapshot()
    assert snap["buckets"][-1] == {"le": "+inf", "count": 1}
    assert hist.quantile(0.99) == pytest.approx(50.0)


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------


def test_registry_get_or_create_is_identity_per_label_set():
    registry = MetricsRegistry()
    a = registry.counter("requests_total", verb="analyze")
    b = registry.counter("requests_total", verb="analyze")
    c = registry.counter("requests_total", verb="query")
    assert a is b and a is not c
    a.inc()
    snap = registry.snapshot()
    assert snap["format"] == METRICS_FORMAT
    assert snap["metrics"]['requests_total{verb="analyze"}']["value"] == 1
    assert snap["metrics"]['requests_total{verb="query"}']["value"] == 0


def test_registry_rejects_kind_mismatch():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")


def test_registry_folds_solve_stats():
    registry = MetricsRegistry()
    registry.record_stage_stats(
        {
            "graph_seconds": 0.5,
            "saturate_seconds": 1.0,
            "simplify_seconds": 0.0,
            "sketch_seconds": 0.25,
            "sccs_timed": 7,
            "worker_failed": 2,
        }
    )
    registry.record_stage_stats({"graph_seconds": 0.5, "sccs_timed": 3})
    metrics = registry.snapshot()["metrics"]
    assert metrics['solver_stage_seconds_total{stage="graph"}']["value"] == 1.0
    assert metrics['solver_stage_seconds_total{stage="saturate"}']["value"] == 1.0
    assert 'solver_stage_seconds_total{stage="simplify"}' not in metrics
    assert metrics["solver_sccs_solved_total"]["value"] == 10
    assert metrics["solver_worker_failed_total"]["value"] == 2


def test_prometheus_rendering_is_cumulative():
    registry = MetricsRegistry()
    registry.counter("requests_total", verb="analyze").inc(3)
    hist = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    text = registry.render_prometheus()
    assert "# TYPE requests_total counter" in text
    assert 'requests_total{verb="analyze"} 3.0' in text
    assert "# TYPE latency_seconds histogram" in text
    # Prometheus buckets are cumulative; ours are stored per-bucket.
    assert 'latency_seconds_bucket{le="0.1"} 1' in text
    assert 'latency_seconds_bucket{le="1.0"} 2' in text
    assert 'latency_seconds_bucket{le="+Inf"} 3' in text
    assert "latency_seconds_count 3" in text


# ---------------------------------------------------------------------------
# Process default: the null registry and install_default
# ---------------------------------------------------------------------------


def test_null_registry_is_inert():
    assert NULL_REGISTRY.enabled is False
    instrument = NULL_REGISTRY.counter("anything", verb="x")
    instrument.inc()
    instrument.observe(1.0)
    assert instrument is NULL_REGISTRY.histogram("other")
    assert NULL_REGISTRY.snapshot() == {"format": METRICS_FORMAT, "metrics": {}}
    assert NULL_REGISTRY.render_prometheus() == ""


def test_install_default_is_idempotent():
    previous = set_registry(None)  # force the null default
    try:
        first = install_default()
        assert first.enabled and get_registry() is first
        assert install_default() is first  # a real registry is kept
    finally:
        set_registry(previous)
