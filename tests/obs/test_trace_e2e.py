"""End-to-end tracing: one exported trace covering driver and worker processes.

This is the PR's acceptance scenario: analyze a generated program on the
``processes`` backend with ``--trace-out`` and get a single Chrome trace in
which the workers' per-SCC solve spans are parented under the service's wave
spans, on their own named process tracks.
"""

import json
import os

from repro.__main__ import main as cli_main
from repro.obs import TRACE_FORMAT, load_jsonl


def _write_stress_program(tmp_path):
    """One generated mini-C program big enough for multi-SCC waves."""
    from repro.gen import generate_corpus, named_profiles

    (program,) = generate_corpus(1, 99, named_profiles()["stress"])
    path = tmp_path / f"{program.name}.c"
    path.write_text(program.source)
    return str(path)


def test_cli_serial_trace_jsonl_round_trip(tmp_path, capsys):
    source = tmp_path / "tiny.s"
    source.write_text("main:\n    mov eax, 1\n    ret\n")
    out = tmp_path / "trace.jsonl"
    assert cli_main(["analyze", str(source), "--trace-out", str(out)]) == 0
    header, spans = load_jsonl(str(out))
    assert header["format"] == TRACE_FORMAT
    assert header["spans"] == len(spans) > 0
    names = {span["name"] for span in spans}
    assert {"service.analyze", "service.parse", "service.constraint_gen",
            "service.solve", "solver.solve_scc", "solver.saturate"} <= names
    # Everything below the root parents into the same single trace.
    ids = {span["span_id"] for span in spans}
    root = next(s for s in spans if s["name"] == "service.analyze")
    assert root["parent_id"] is None
    assert all(
        span["parent_id"] in ids for span in spans if span is not root
    )


def test_cli_processes_trace_stitches_worker_spans(tmp_path):
    program = _write_stress_program(tmp_path)
    out = tmp_path / "trace.json"
    assert (
        cli_main(
            [
                "analyze",
                program,
                "--backend",
                "processes",
                "--trace-out",
                str(out),
            ]
        )
        == 0
    )
    with open(out) as handle:
        doc = json.load(handle)
    assert doc["otherData"]["format"] == TRACE_FORMAT

    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    meta = {e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"}

    # At least two process tracks: the driver plus >= 1 worker, named apart.
    driver_pid = os.getpid()
    assert meta[driver_pid] == "repro"
    worker_pids = {pid for pid, name in meta.items() if name == f"repro-worker-{pid}"}
    assert worker_pids, f"no worker tracks in {sorted(meta.values())}"

    # Every worker-side solve span is parented under a driver-side wave span.
    waves = {
        e["args"]["span_id"]: e
        for e in complete
        if e["name"] == "scheduler.wave"
    }
    assert waves and all(e["pid"] == driver_pid for e in waves.values())
    worker_solves = [e for e in complete if e["name"] == "procpool.solve_scc"]
    assert worker_solves, "processes backend dispatched no traced chunks"
    for event in worker_solves:
        assert event["pid"] in worker_pids
        assert event["args"]["parent_id"] in waves, (
            f"worker span {event['args']['span_id']} not parented under a wave"
        )

    # Worker-local solver stage spans rode along too, nested under the solve.
    solve_ids = {e["args"]["span_id"] for e in worker_solves}
    worker_stage = [
        e
        for e in complete
        if e["pid"] in worker_pids and e["name"] == "solver.solve_scc"
    ]
    assert worker_stage
    assert all(e["args"]["parent_id"] in solve_ids for e in worker_stage)
