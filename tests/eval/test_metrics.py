"""Tests for the evaluation metrics (TIE distance, conservativeness, pointer accuracy, const recall)."""

import pytest

from repro.core import (
    IntType,
    PointerType,
    Sketch,
    StructRef,
    StructType,
    TypedefType,
    UnknownType,
    VoidType,
    default_lattice,
    field,
)
from repro.core.ctype import StructField
from repro.core.labels import LoadLabel, StoreLabel
from repro.eval.metrics import (
    MAX_DISTANCE,
    interval_size_from_sketch,
    is_conservative,
    pointer_accuracy,
    sketch_conservative,
    type_distance,
)

LOAD = LoadLabel()
STORE = StoreLabel()

INT = IntType(32, True)
CHAR = IntType(8, True)
NODE = StructType("node", (StructField(0, PointerType(StructRef("node"))), StructField(4, INT)))
STRUCTS = {"node": NODE}


# -- distance --------------------------------------------------------------------------


def test_distance_exact_match_is_zero():
    assert type_distance(INT, INT) == 0.0
    assert type_distance(PointerType(INT), PointerType(INT)) == 0.0


def test_distance_unknown_is_middling():
    assert type_distance(UnknownType(), INT) == 2.0
    assert type_distance(None, INT) == MAX_DISTANCE


def test_distance_scalar_vs_pointer_is_large():
    assert type_distance(INT, PointerType(INT)) == 2.5
    assert type_distance(PointerType(INT), INT) == 2.5


def test_distance_pointer_recursion_halves():
    inferred = PointerType(CHAR)
    truth = PointerType(INT)
    assert type_distance(inferred, truth) == pytest.approx(0.5 * type_distance(CHAR, INT))


def test_distance_signedness_and_size():
    assert type_distance(IntType(32, False), INT) == 0.5
    assert type_distance(IntType(8, True), INT) == 1.0


def test_distance_typedef_transparent():
    fd = TypedefType("#FileDescriptor", INT)
    assert type_distance(fd, INT) == 0.0


def test_distance_struct_fields_compared_by_offset():
    inferred = StructType("s", (StructField(0, PointerType(StructRef("s"))), StructField(4, INT)))
    assert type_distance(inferred, NODE, {"s": inferred}, STRUCTS) == 0.0
    worse = StructType("s", (StructField(0, INT), StructField(4, INT)))
    assert type_distance(worse, NODE, {"s": worse}, STRUCTS) > 0.5


def test_distance_pointer_to_struct():
    inferred = PointerType(StructRef("node"))
    assert type_distance(inferred, PointerType(StructRef("node")), STRUCTS, STRUCTS) == 0.0


# -- conservativeness (displayed types) ----------------------------------------------------


def test_conservative_unknown_is_always_ok():
    assert is_conservative(UnknownType(), PointerType(INT))
    assert is_conservative(None, INT)


def test_conservative_int_for_pointer_is_not_ok():
    assert not is_conservative(INT, PointerType(INT))


def test_conservative_pointer_for_int_is_not_ok():
    assert not is_conservative(PointerType(INT), INT)


def test_conservative_wider_int_is_ok():
    assert is_conservative(INT, CHAR)
    assert not is_conservative(CHAR, INT)


# -- conservativeness (sketch intervals) -----------------------------------------------------


def _sketch():
    return Sketch(default_lattice())


def test_sketch_unconstrained_is_conservative():
    assert sketch_conservative(_sketch(), INT)
    assert sketch_conservative(_sketch(), PointerType(INT))


def test_sketch_pointer_claim_on_int_is_not_conservative():
    sketch = _sketch()
    sketch.add_path([LOAD])
    assert not sketch_conservative(sketch, INT)
    assert sketch_conservative(sketch, PointerType(INT))


def test_sketch_scalar_bound_must_be_comparable():
    sketch = _sketch()
    sketch.nodes[sketch.root].upper = "#FileDescriptor"
    assert sketch_conservative(sketch, INT)  # #FileDescriptor <= int: comparable
    sketch2 = _sketch()
    sketch2.nodes[sketch2.root].upper = "str"
    assert not sketch_conservative(sketch2, INT)


def test_sketch_field_beyond_struct_is_not_conservative():
    sketch = _sketch()
    pointee = sketch.add_node()
    sketch.add_edge(sketch.root, LOAD, pointee)
    sketch.add_edge(pointee, field(32, 4), sketch.add_node())
    assert sketch_conservative(sketch, PointerType(StructRef("node")), STRUCTS)
    # claiming a field in the middle of the 8-byte struct that does not exist
    sketch.add_edge(pointee, field(32, 2), sketch.add_node())
    assert not sketch_conservative(sketch, PointerType(StructRef("node")), STRUCTS)


def test_sketch_byte_field_view_of_char_cell_is_conservative():
    # Regression (first generated-corpus oracle sweep): a ``const char *``
    # parameter whose sketch was exactly ``load -> sigma8@0`` with
    # unconstrained bounds -- i.e. inferred *identical* to the truth -- was
    # judged non-conservative, because any sigma child on a scalar pointee was
    # treated as a false struct claim.  An offset-0 field view that fits the
    # cell is the cell.
    sketch = _sketch()
    pointee = sketch.add_node()
    sketch.add_edge(sketch.root, LOAD, pointee)
    sketch.add_edge(pointee, field(8, 0), sketch.add_node())
    assert sketch_conservative(sketch, PointerType(CHAR, const=True))


def test_sketch_field_wider_than_scalar_cell_is_not_conservative():
    sketch = _sketch()
    pointee = sketch.add_node()
    sketch.add_edge(sketch.root, LOAD, pointee)
    sketch.add_edge(pointee, field(32, 0), sketch.add_node())
    assert not sketch_conservative(sketch, PointerType(CHAR, const=True))


def test_sketch_field_past_scalar_cell_is_not_conservative():
    sketch = _sketch()
    pointee = sketch.add_node()
    sketch.add_edge(sketch.root, LOAD, pointee)
    sketch.add_edge(pointee, field(32, 4), sketch.add_node())
    assert not sketch_conservative(sketch, PointerType(INT))


def test_sketch_field_before_scalar_cell_is_not_conservative():
    # Negative offsets (pre-frame stack slots) lie outside the cell just as
    # past-the-end offsets do; the struct branch already rejects them.
    sketch = _sketch()
    pointee = sketch.add_node()
    sketch.add_edge(sketch.root, LOAD, pointee)
    sketch.add_edge(pointee, field(8, -4), sketch.add_node())
    assert not sketch_conservative(sketch, PointerType(CHAR, const=True))


def test_sketch_pointer_claim_inside_scalar_slice_is_not_conservative():
    # A narrower in-bounds field view of a scalar is fine -- but only as long
    # as it stays scalar: asserting a load capability on the low byte of an
    # int claims the byte is a pointer, which is false.
    sketch = _sketch()
    pointee = sketch.add_node()
    slice_node = sketch.add_node()
    sketch.add_edge(sketch.root, LOAD, pointee)
    sketch.add_edge(pointee, field(8, 0), slice_node)
    assert sketch_conservative(sketch, PointerType(INT))  # plain slice: fine
    sketch.add_edge(slice_node, LOAD, sketch.add_node())
    assert not sketch_conservative(sketch, PointerType(INT))


# -- pointer accuracy ----------------------------------------------------------------------------


def test_pointer_accuracy_only_for_pointer_truths():
    assert pointer_accuracy(INT, INT) is None
    assert pointer_accuracy(PointerType(INT), PointerType(INT)) == 1.0
    assert pointer_accuracy(INT, PointerType(INT)) == 0.0


def test_pointer_accuracy_partial_levels():
    two_level = PointerType(PointerType(INT))
    assert pointer_accuracy(PointerType(INT), two_level) == 0.5
    assert pointer_accuracy(two_level, PointerType(INT)) == 0.5
    assert pointer_accuracy(None, two_level) == 0.0


# -- interval size -------------------------------------------------------------------------------


def test_interval_size_unconstrained_is_max():
    assert interval_size_from_sketch(_sketch()) == MAX_DISTANCE
    assert interval_size_from_sketch(None) == MAX_DISTANCE


def test_interval_size_shrinks_with_bounds_and_structure():
    bounded = _sketch()
    bounded.nodes[bounded.root].lower = "int"
    bounded.nodes[bounded.root].upper = "int"
    assert interval_size_from_sketch(bounded) == 0.0
    structured = _sketch()
    structured.add_path([LOAD])
    assert interval_size_from_sketch(structured) < MAX_DISTANCE
