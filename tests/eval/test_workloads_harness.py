"""Tests for the synthetic workload generator, the harness, and the scaling fits."""

import math

import pytest

from repro.eval.harness import EngineReport, compare_engines, figure8_rows, figure9_rows, figure10_rows, format_rows, run_engine
from repro.eval.metrics import ProgramMetrics, aggregate, evaluate_program
from repro.eval.scaling import fit_power_law, measure_scaling
from repro.eval.workloads import (
    SourceGenerator,
    generate_program_source,
    make_cluster,
    make_workload,
    scaling_suite,
    standard_suite,
)
from repro.baselines import ALL_ENGINES, RetypdEngine
from repro.frontend import compile_c


def test_generated_source_is_deterministic():
    a = generate_program_source("demo", 10, seed=3)
    b = generate_program_source("demo", 10, seed=3)
    c = generate_program_source("demo", 10, seed=4)
    assert a == b
    assert a != c


def test_generated_source_compiles_across_seeds():
    for seed in range(5):
        workload = make_workload(f"gen{seed}", 10, seed=seed)
        assert workload.instructions > 50
        assert len(workload.program.procedures) >= 5
        assert workload.ground_truth.functions


def test_generator_emits_const_and_recursive_structs():
    source = generate_program_source("demo", 20, seed=1)
    assert "const struct" in source
    assert "->next" in source
    compiled = compile_c(source)
    consts = [
        flag
        for truth in compiled.ground_truth.functions.values()
        for flag in truth.param_const
    ]
    assert any(consts)


def test_cluster_members_share_library_code():
    members = make_cluster("clu", members=3, shared_functions=8, member_functions=3, seed=5)
    assert len(members) == 3
    shared_names = None
    for member in members:
        names = {n for n in member.program.procedures if n.startswith("clu_")}
        shared_names = names if shared_names is None else shared_names & names
    assert shared_names, "cluster members must share the library procedures"


def test_dash_in_cluster_name_is_handled():
    members = make_cluster("vpx-d", members=1, shared_functions=6, member_functions=3, seed=9)
    assert members[0].instructions > 0


def test_scaling_suite_sizes_increase():
    suite = scaling_suite(sizes=(4, 8, 16), seed=2)
    sizes = [w.instructions for w in suite]
    assert sizes == sorted(sizes)
    assert sizes[0] < sizes[-1]


@pytest.fixture(scope="module")
def tiny_suite():
    return [
        make_workload("tiny_a", 8, seed=21, cluster="pair"),
        make_workload("tiny_b", 8, seed=22, cluster="pair"),
        make_workload("solo", 8, seed=23),
    ]


def test_run_engine_and_cluster_averaging(tiny_suite):
    report = run_engine(RetypdEngine(), tiny_suite)
    assert set(report.per_program) == {"tiny_a", "tiny_b", "solo"}
    assert set(report.clusters) == {"pair", "solo"}
    overall_clustered = report.overall(clustered=True)
    overall_flat = report.overall(clustered=False)
    for key in ("distance", "conservativeness", "const_recall"):
        assert key in overall_clustered
        assert key in overall_flat
    assert 0.0 <= overall_clustered["conservativeness"] <= 1.0


def test_compare_engines_and_figure_rows(tiny_suite):
    reports = compare_engines(tiny_suite, engine_names=("retypd", "propagation"))
    rows8 = figure8_rows(reports)
    rows9 = figure9_rows(reports)
    assert {row["engine"] for row in rows8} == {"retypd", "propagation"}
    by_engine = {row["engine"]: row for row in rows8}
    assert by_engine["retypd"]["overall_distance"] <= by_engine["propagation"]["overall_distance"]
    by_engine9 = {row["engine"]: row for row in rows9}
    assert (
        by_engine9["retypd"]["overall_conservativeness"]
        >= by_engine9["propagation"]["overall_conservativeness"]
    )
    rows10 = figure10_rows(reports["retypd"], tiny_suite)
    assert any(str(row.get("cluster")).startswith("OVERALL") for row in rows10)
    table = format_rows(rows10)
    assert "cluster" in table.splitlines()[0]


def test_aggregate_empty_and_nonempty():
    assert aggregate([]) == {}
    metrics = ProgramMetrics(name="empty")
    assert aggregate([metrics])["conservativeness"] == 1.0


def test_all_engines_run_on_one_workload(tiny_suite):
    workload = tiny_suite[0]
    for name, engine_cls in ALL_ENGINES.items():
        types = engine_cls().analyze(workload.program)
        metrics = evaluate_program(workload.name, types, workload.ground_truth)
        assert metrics.variable_count > 0, name
        assert 0.0 <= metrics.conservativeness <= 1.0


# -- scaling fits ------------------------------------------------------------------------------


def test_fit_power_law_recovers_synthetic_exponent():
    xs = [10, 50, 100, 500, 1000, 5000]
    ys = [0.002 * (x ** 1.1) for x in xs]
    fit = fit_power_law(xs, ys)
    assert fit.b == pytest.approx(1.1, abs=0.05)
    assert fit.a == pytest.approx(0.002, rel=0.3)
    assert fit.r_squared > 0.99


def test_fit_power_law_degenerate_input():
    fit = fit_power_law([1.0], [1.0])
    assert fit.a == 0.0 and fit.b == 0.0


def test_measure_scaling_produces_monotone_sizes():
    suite = scaling_suite(sizes=(4, 10), seed=6)
    points = measure_scaling(suite, measure_memory=False)
    assert len(points) == 2
    assert points[0].instructions < points[1].instructions
    assert all(p.seconds >= 0 for p in points)

def test_standard_suite_is_stable_across_hash_seeds():
    """Regression (generated-corpus sweep era): per-name workload seeds used
    ``hash(name)``, so the *content* of the figure suites varied with
    ``PYTHONHASHSEED`` -- the same latent sensitivity the process backend
    forced out of the constraint-graph core in the PR-4 fixes.  crc32 makes
    the suite byte-identical in every interpreter."""
    import hashlib
    import os
    import subprocess
    import sys

    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    script = (
        "import hashlib\n"
        "from repro.eval.workloads import standard_suite\n"
        "digest = hashlib.sha256()\n"
        "for workload in standard_suite(scale=0.25):\n"
        "    digest.update(workload.name.encode())\n"
        "    digest.update(workload.source.encode())\n"
        "print(digest.hexdigest())\n"
    )
    digests = set()
    for hashseed in ("0", "31337"):
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            cwd=repo_root,
            env={
                "PYTHONHASHSEED": hashseed,
                "PYTHONPATH": os.path.join(repo_root, "src"),
                "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
            },
        )
        digests.add(out.stdout.strip())
    assert len(digests) == 1, "standard_suite content varies with PYTHONHASHSEED"
