"""The ``metrics`` verb over a real socket, and the admission-gate gauges.

The metrics registry is process-wide and shared by every server in the test
process, so these tests assert *deltas* between snapshots (or lower bounds),
never absolute counts.
"""

import threading
import time

import pytest
from test_server_end_to_end import running_server

from repro.eval.workloads import make_workload
from repro.obs import METRICS_FORMAT
from repro.server import TypeQueryClient, TypeQueryError


def metric(snapshot, key):
    return snapshot["metrics"].get(key)


def counter_value(snapshot, key):
    entry = metric(snapshot, key)
    return entry["value"] if entry else 0.0


# ---------------------------------------------------------------------------
# The verb itself
# ---------------------------------------------------------------------------


def test_metrics_verb_reflects_served_requests():
    source = str(make_workload("metrics_smoke", 4, seed=21).program)
    with running_server() as (host, port, _):
        with TypeQueryClient(host, port) as client:
            before = client.metrics()
            assert before["format"] == METRICS_FORMAT
            result = client.analyze(source)
            client.query(result["program_id"])
            after = client.metrics()

    analyze_key = 'server_requests_total{verb="analyze"}'
    query_key = 'server_requests_total{verb="query"}'
    assert counter_value(after, analyze_key) == counter_value(before, analyze_key) + 1
    assert counter_value(after, query_key) == counter_value(before, query_key) + 1

    latency = metric(after, 'server_request_seconds{verb="analyze"}')
    assert latency["type"] == "histogram"
    assert latency["count"] >= 1
    assert latency["p50"] is not None and latency["p50"] >= 0
    assert {"p50", "p95", "p99"} <= set(latency)
    assert latency["buckets"][-1]["le"] == "+inf"

    # The analysis itself fed the solver fold-in and cache counters.
    assert counter_value(after, "solver_sccs_solved_total") > counter_value(
        before, "solver_sccs_solved_total"
    )


def test_metrics_verb_prometheus_exposition():
    source = str(make_workload("metrics_prom", 3, seed=22).program)
    with running_server() as (host, port, _):
        with TypeQueryClient(host, port) as client:
            client.analyze(source)
            reply = client.metrics(format="prometheus")
    assert reply["format"] == "prometheus"
    text = reply["text"]
    assert "# TYPE server_requests_total counter" in text
    assert 'server_requests_total{verb="analyze"}' in text
    assert 'server_request_seconds_bucket{verb="analyze",le="+Inf"}' in text
    assert "# TYPE server_gate_pending gauge" in text


def test_metrics_verb_rejects_unknown_format():
    with running_server() as (host, port, _):
        with TypeQueryClient(host, port) as client:
            with pytest.raises(TypeQueryError) as excinfo:
                client.metrics(format="xml")
            assert excinfo.value.code == "invalid_params"
            with pytest.raises(TypeQueryError) as excinfo:
                client.request("metrics", {"format": 7})
            assert excinfo.value.code == "invalid_params"


def test_metrics_verb_counts_errors_by_code():
    with running_server() as (host, port, _):
        with TypeQueryClient(host, port) as client:
            before = client.metrics()
            with pytest.raises(TypeQueryError):
                client.query("no-such-program-id")
            after = client.metrics()
    key = 'server_errors_total{code="unknown_program",verb="query"}'
    assert counter_value(after, key) == counter_value(before, key) + 1


# ---------------------------------------------------------------------------
# Gate visibility: the stats verb's gate object and the gauges move together
# ---------------------------------------------------------------------------


def test_gate_depth_visible_when_filled():
    """Fill the admission gate and watch pending/inflight from outside.

    One slot, three pending: block the only analysis thread on an event,
    submit three *distinct* programs (dedup would collapse identical ones),
    and poll ``stats`` until the gate shows 1 running + 3 admitted.  The
    fourth submission must bounce with ``overloaded``; after release the
    gate must drain to zero.
    """
    release = threading.Event()

    # max_queue_wait_seconds=None isolates the static max_pending cap: this
    # test wants the fourth submission to bounce on depth, not on the
    # wait-estimate heuristic (covered in test_admission_coalescing.py).
    with running_server(
        max_concurrency=1, max_pending=3, max_queue_wait_seconds=None
    ) as (host, port, instance):
        original = instance._analyze_source

        def blocking_analyze(source, kind):
            assert release.wait(timeout=60), "gate test never released"
            return original(source, kind)

        instance._analyze_source = blocking_analyze
        sources = [f"f{i}:\n    mov eax, {i}\n    ret\n" for i in range(3)]
        results = []

        def submit(source):
            with TypeQueryClient(host, port) as client:
                results.append(client.analyze(source)["program_id"])

        threads = [
            threading.Thread(target=submit, args=(source,)) for source in sources
        ]
        for thread in threads:
            thread.start()

        try:
            with TypeQueryClient(host, port) as observer:
                deadline = time.monotonic() + 30
                gate = {}
                while time.monotonic() < deadline:
                    gate = observer.stats()["gate"]
                    if gate["pending"] == 3 and gate["inflight"] == 1:
                        break
                    time.sleep(0.02)
                assert gate["pending"] == 3
                assert gate["inflight"] == 1
                assert gate["max_concurrency"] == 1
                assert gate["max_pending"] == 3
                assert gate["max_queue_wait_seconds"] is None
                # Queue-wait visibility: with the only slot stalled and two
                # jobs queued, the estimate must be strictly positive.
                assert gate["estimated_queue_wait_seconds"] > 0.0

                snapshot = observer.metrics()
                assert metric(snapshot, "server_gate_pending")["value"] == 3
                assert metric(snapshot, "server_gate_inflight")["value"] == 1

                with pytest.raises(TypeQueryError) as excinfo:
                    observer.analyze("g0:\n    mov eax, 9\n    ret\n")
                assert excinfo.value.code == "overloaded"
        finally:
            release.set()
            for thread in threads:
                thread.join(timeout=60)

        assert len(results) == 3 and len(set(results)) == 3
        with TypeQueryClient(host, port) as observer:
            gate = observer.stats()["gate"]
            assert gate["pending"] == 0 and gate["inflight"] == 0
            snapshot = observer.metrics()
            assert metric(snapshot, "server_gate_pending")["value"] == 0
            assert metric(snapshot, "server_gate_inflight")["value"] == 0
