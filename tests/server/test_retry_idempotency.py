"""Transport-failure retries are restricted to idempotent verbs.

The dangerous shape: a connection severed *after* the server read (and maybe
applied) the request but *before* the reply arrived.  A hand-rolled flaky
server reproduces it deterministically -- it reads the first connection's
request, then closes without replying.  A retrying client must resend only
idempotent verbs (``query`` here); replaying a ``session.edit`` would apply
the edit twice, so the client must surface the connection error instead.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.server import (
    AsyncTypeQueryClient,
    RetryPolicy,
    ServerConnectionError,
    TypeQueryClient,
)
from repro.server import protocol


class FlakyServer:
    """Kills the first connection mid-reply; answers every later one.

    Every request line read is recorded in ``received`` *before* the kill, so
    a test can prove exactly how many times the server saw (i.e. could have
    applied) a verb.
    """

    def __init__(self):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self.connections = 0
        self.received = []
        self._closing = False
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._closing:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            kill_after_read = self.connections == 1
            handle = conn.makefile("rwb")
            try:
                while True:
                    line = handle.readline()
                    if not line:
                        break
                    request = json.loads(line)
                    self.received.append(request)
                    if kill_after_read:
                        # The server "applied" the request (it read it) but
                        # the reply never makes it out: sever the transport.
                        break
                    reply = {
                        "v": protocol.PROTOCOL_VERSION,
                        "id": request.get("id"),
                        "ok": True,
                        "result": {"echo": request.get("op")},
                    }
                    handle.write((json.dumps(reply) + "\n").encode("utf-8"))
                    handle.flush()
            finally:
                try:
                    handle.close()
                    conn.close()
                except OSError:
                    pass

    def close(self):
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass


@pytest.fixture()
def flaky():
    server = FlakyServer()
    yield server
    server.close()


def test_idempotent_verb_is_retried_across_dropped_connection(flaky):
    """``query`` dropped mid-reply reconnects and succeeds on the retry."""
    with TypeQueryClient(
        port=flaky.port, retry=RetryPolicy(attempts=2, base_delay=0.01)
    ) as client:
        result = client.query("prog")
    assert result == {"echo": "query"}
    assert flaky.connections == 2
    ops = [request["op"] for request in flaky.received]
    assert ops == ["query", "query"]  # resent: safe, it is a pure read


def test_non_idempotent_verb_is_not_retried(flaky):
    """``session.edit`` dropped mid-reply surfaces the connection error --
    the server saw the request exactly once, so nothing can double-apply."""
    with TypeQueryClient(
        port=flaky.port, retry=RetryPolicy(attempts=2, base_delay=0.01)
    ) as client:
        with pytest.raises(ServerConnectionError):
            client.session_edit("sess", "int f(void) { return 1; }", kind="c")
    assert flaky.connections == 1
    ops = [request["op"] for request in flaky.received]
    assert ops == ["session.edit"]  # delivered once, never replayed


def test_async_client_matches_the_sync_retry_rules(flaky):
    """The asyncio client applies the same idempotency gate."""

    async def run():
        client = await AsyncTypeQueryClient.connect(
            port=flaky.port, retry=RetryPolicy(attempts=2, base_delay=0.01)
        )
        try:
            with pytest.raises(ServerConnectionError):
                await client.session_edit("sess", "int f(void) { return 1; }", kind="c")
        finally:
            await client.aclose()

    asyncio.run(run())
    assert flaky.connections == 1
    assert [request["op"] for request in flaky.received] == ["session.edit"]
