"""The one-shot CLI: ``python -m repro analyze`` shares the server encoding."""

import json
import os
import subprocess
import sys

import pytest

from repro import analyze_program
from repro.frontend import compile_c
from repro.server import protocol
from repro.server.registry import ProgramRegistry

SOURCE = """
struct node { struct node * next; int value; };

int total(const struct node * head) {
    int sum;
    sum = 0;
    while (head != NULL) {
        sum = sum + head->value;
        head = head->next;
    }
    return sum;
}

int twice(int x) {
    return x + x;
}
"""

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def run_cli(*args, stdin=None):
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        input=stdin,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )


@pytest.fixture(scope="module")
def c_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "demo.c"
    path.write_text(SOURCE)
    return str(path)


@pytest.fixture(scope="module")
def asm_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "demo.s"
    path.write_text(str(compile_c(SOURCE).program))
    return str(path)


@pytest.fixture(scope="module")
def reference():
    return analyze_program(compile_c(SOURCE).program)


def test_analyze_prints_signatures(c_file, reference):
    result = run_cli("analyze", c_file)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == reference.report().strip()


def test_analyze_asm_by_extension(asm_file, reference):
    result = run_cli("analyze", asm_file)
    assert result.returncode == 0, result.stderr
    assert reference.signature("total") in result.stdout


def test_analyze_json_matches_server_encoding(c_file, reference):
    result = run_cli("analyze", c_file, "--json")
    assert result.returncode == 0, result.stderr
    payload = json.loads(result.stdout)
    # The CLI must assign the same environment-qualified id a
    # default-configured server would (saved dumps resolve against a daemon).
    from repro.service.incremental import AnalysisService, ServiceConfig
    from repro.service.store import environment_fingerprint

    service = AnalysisService(ServiceConfig(use_cache=False))
    environment = environment_fingerprint(
        service.lattice, service.extern_table, service.config.solver
    )
    expected_id = ProgramRegistry.make_id("c", open(c_file).read(), environment)
    expected = json.loads(
        json.dumps(protocol.program_payload(reference, expected_id), default=str)
    )
    # Timings differ run to run; the type content must not.
    payload.pop("stats"), expected.pop("stats")
    assert payload == expected


def test_analyze_single_procedure_json(c_file, reference):
    result = run_cli("analyze", c_file, "--json", "--procedure", "total")
    assert result.returncode == 0, result.stderr
    payload = json.loads(result.stdout)
    assert payload["signature"] == reference.signature("total")
    assert set(payload["structs"]) == set(reference.procedure_structs("total"))


def test_analyze_stdin_with_kind(reference):
    result = run_cli("analyze", "-", "--kind", "c", stdin=SOURCE)
    assert result.returncode == 0, result.stderr
    assert reference.signature("twice") in result.stdout


def test_analyze_unknown_procedure_fails(c_file):
    result = run_cli("analyze", c_file, "--procedure", "nope")
    assert result.returncode == 1
    assert "no procedure" in result.stderr


def test_analyze_broken_source_fails(tmp_path=None):
    result = run_cli("analyze", "-", "--kind", "c", stdin="int broken(")
    assert result.returncode == 1
    assert "failed" in result.stderr
