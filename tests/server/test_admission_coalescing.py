"""Queue-depth-aware admission control and single-flight coalescing, e2e.

Three behaviors over real sockets:

* a shed request gets its typed ``overloaded`` reply *promptly* while the
  gate is saturated -- shedding happens before queueing, so refusal latency
  is bounded by the event loop, not by queue depth;
* the gate's accounting (``_pending``/``_running`` and the
  ``server_gate_pending``/``server_gate_inflight`` gauges) survives failing
  pooled jobs: every counter returns to zero;
* N concurrent identical ``analyze`` submissions run exactly one solve and
  receive N byte-identical replies, counted by ``server_coalesced_total``.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.server import AsyncTypeQueryClient, TypeQueryClient, TypeQueryError

from test_server_end_to_end import running_server


def _metric(snapshot, name):
    rows = snapshot["metrics"]
    return rows.get(name)


def _counter_value(snapshot, name):
    row = _metric(snapshot, name)
    return row["value"] if row else 0


# ---------------------------------------------------------------------------
# Shedding never waits in the queue
# ---------------------------------------------------------------------------


def test_shed_reply_is_prompt_while_gate_saturated():
    """Saturate the gate, age the running job past the wait cap, then submit:
    the ``overloaded`` reply must arrive promptly (the request never queued)
    and be counted in ``server_errors_total{code=overloaded}``."""
    release = threading.Event()
    entered = threading.Event()

    with running_server(
        max_concurrency=1, max_pending=64, max_queue_wait_seconds=0.2
    ) as (host, port, instance):
        original = instance._analyze_source

        def blocking_analyze(source, kind):
            entered.set()
            assert release.wait(timeout=60), "shed test never released"
            return original(source, kind)

        instance._analyze_source = blocking_analyze

        def submit_leader():
            with TypeQueryClient(host, port) as client:
                client.analyze("f0:\n    mov eax, 0\n    ret\n")

        leader = threading.Thread(target=submit_leader)
        leader.start()
        try:
            assert entered.wait(timeout=30), "leader never reached the gate"
            # Age the only running job past max_queue_wait_seconds so the
            # estimator predicts an over-cap wait for any newcomer.
            time.sleep(0.5)

            with TypeQueryClient(host, port) as observer:
                before = observer.metrics()
                start = time.perf_counter()
                with pytest.raises(TypeQueryError) as excinfo:
                    observer.analyze("g0:\n    mov eax, 9\n    ret\n")
                elapsed = time.perf_counter() - start
                assert excinfo.value.code == "overloaded"
                # Promptness: the refusal must not have sat behind the
                # stalled solve (which is still holding the gate right now).
                assert elapsed < 2.0
                assert not release.is_set()

                after = observer.metrics()
                key = 'server_errors_total{code="overloaded",verb="analyze"}'
                assert _counter_value(after, key) == _counter_value(before, key) + 1
                shed_key = 'server_shed_total{reason="queue_wait"}'
                assert _counter_value(after, shed_key) >= 1

                stats = observer.stats()
                assert stats["shed_total"] >= 1
                assert stats["gate"]["estimated_queue_wait_seconds"] > 0.2
        finally:
            release.set()
            leader.join(timeout=60)

        with TypeQueryClient(host, port) as observer:
            gate = observer.stats()["gate"]
            assert gate["pending"] == 0 and gate["inflight"] == 0


# ---------------------------------------------------------------------------
# Gate accounting on failure paths
# ---------------------------------------------------------------------------


def test_gate_gauges_drain_to_zero_after_failing_analyses():
    """Fill the gate with analyses whose pooled jobs raise; both gauges and
    the internal counters must return exactly to zero afterwards."""
    with running_server(max_concurrency=2) as (host, port, instance):

        def exploding_analyze(source, kind):
            raise RuntimeError("pooled job boom")

        instance._analyze_source = exploding_analyze
        errors = []

        def submit(index):
            with TypeQueryClient(host, port) as client:
                try:
                    client.analyze(f"f{index}:\n    mov eax, {index}\n    ret\n")
                except TypeQueryError as exc:
                    errors.append(exc.code)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        assert len(errors) == 6
        assert set(errors) == {"internal_error"}

        with TypeQueryClient(host, port) as observer:
            stats = observer.stats()
            assert stats["gate"]["pending"] == 0
            assert stats["gate"]["inflight"] == 0
            snapshot = observer.metrics()
            assert _metric(snapshot, "server_gate_pending")["value"] == 0
            assert _metric(snapshot, "server_gate_inflight")["value"] == 0
        assert instance._pending == 0 and instance._running == 0
        assert not instance._running_started
        # Failures must not feed the service-time estimate.
        assert instance._service_ewma == 0.0


def test_parse_errors_also_drain_the_gate():
    """The ordinary client-error path (unparseable source) exercises the same
    exactly-once decrements without monkeypatching."""
    with running_server(max_concurrency=2) as (host, port, instance):
        with TypeQueryClient(host, port) as client:
            for index in range(4):
                with pytest.raises(TypeQueryError) as excinfo:
                    client.analyze(f"this is not assembly {index} !!!")
                assert excinfo.value.code == "parse_error"
            stats = client.stats()
            assert stats["gate"]["pending"] == 0
            assert stats["gate"]["inflight"] == 0
        assert instance._pending == 0 and instance._running == 0


# ---------------------------------------------------------------------------
# Single-flight coalescing
# ---------------------------------------------------------------------------


def test_coalescing_one_solve_byte_identical_replies():
    """N concurrent identical analyzes -> exactly one solve, N byte-identical
    replies, N-1 counted by ``server_coalesced_total``."""
    clients = 8
    solves = []

    with running_server() as (host, port, instance):
        original = instance._analyze_source

        def counting_analyze(source, kind):
            solves.append(source)
            # Hold the flight open long enough for every follower to join it.
            time.sleep(0.75)
            return original(source, kind)

        instance._analyze_source = counting_analyze
        source = "shared:\n    mov eax, 42\n    ret\n"

        with TypeQueryClient(host, port) as observer:
            before = observer.metrics()

        async def submit():
            client = await AsyncTypeQueryClient.connect(host, port, connect_retries=5)
            try:
                return await client.analyze(source, full=True)
            finally:
                await client.aclose()

        async def fan_out():
            return await asyncio.gather(*(submit() for _ in range(clients)))

        results = asyncio.run(fan_out())

        assert len(solves) == 1, "coalescing must run exactly one solve"
        assert instance.registry.admits == 1
        payloads = {json.dumps(r, sort_keys=True) for r in results}
        assert len(payloads) == 1, "coalesced replies must be byte-identical"
        assert all(r["cached"] is False for r in results)
        assert instance.coalesced_total == clients - 1

        with TypeQueryClient(host, port) as observer:
            after = observer.metrics()
            # The metrics registry is process-wide (shared by every server in
            # the test process), so compare snapshots, not absolutes.
            delta = _counter_value(after, "server_coalesced_total") - _counter_value(
                before, "server_coalesced_total"
            )
            assert delta == clients - 1
            assert observer.stats()["coalesced_total"] == clients - 1
