"""Wire protocol: framing, versioning, typed errors, payload builders."""

import json

import pytest

from repro import analyze_program
from repro.core.ctype import ctype_from_json, ctype_to_json
from repro.frontend import compile_c
from repro.server import protocol
from repro.server.protocol import ErrorCode, ProtocolError

SOURCE = """
struct node { struct node * next; int value; };

int total(const struct node * head) {
    int sum;
    sum = 0;
    while (head != NULL) {
        sum = sum + head->value;
        head = head->next;
    }
    return sum;
}
"""


@pytest.fixture(scope="module")
def analyzed():
    return analyze_program(compile_c(SOURCE).program)


def test_encode_decode_round_trip():
    request = protocol.make_request("query", {"program_id": "abc"}, request_id=7)
    line = protocol.encode(request)
    assert line.endswith(b"\n") and line.count(b"\n") == 1
    assert protocol.decode_line(line) == request


def test_encode_is_deterministic():
    a = protocol.encode(protocol.make_request("ping", {}, 1))
    b = protocol.encode(protocol.make_request("ping", {}, 1))
    assert a == b


def test_decode_rejects_garbage():
    with pytest.raises(ProtocolError) as err:
        protocol.decode_line(b"not json at all\n")
    assert err.value.code == ErrorCode.BAD_REQUEST
    with pytest.raises(ProtocolError):
        protocol.decode_line(b"[1, 2, 3]\n")  # not an object


def test_validate_checks_version_and_op():
    good = protocol.make_request("ping", {}, 1)
    op, params, request_id = protocol.validate_request(good)
    assert (op, params, request_id) == ("ping", {}, 1)

    wrong_version = dict(good, v=99)
    with pytest.raises(ProtocolError) as err:
        protocol.validate_request(wrong_version)
    assert err.value.code == ErrorCode.UNSUPPORTED_VERSION

    wrong_op = dict(good, op="frobnicate")
    with pytest.raises(ProtocolError) as err:
        protocol.validate_request(wrong_op)
    assert err.value.code == ErrorCode.UNKNOWN_OP

    bad_params = dict(good, params=[1])
    with pytest.raises(ProtocolError) as err:
        protocol.validate_request(bad_params)
    assert err.value.code == ErrorCode.INVALID_PARAMS


def test_error_codes_are_typed():
    assert ErrorCode.UNKNOWN_PROCEDURE in ErrorCode.ALL
    with pytest.raises(AssertionError):
        ProtocolError("made_up_code", "nope")


def test_source_kind_validation():
    assert protocol.source_kind({}) == "asm"
    assert protocol.source_kind({"kind": "c"}) == "c"
    with pytest.raises(ProtocolError) as err:
        protocol.source_kind({"kind": "rust"})
    assert err.value.code == ErrorCode.INVALID_PARAMS


def test_program_payload_is_json_able(analyzed):
    payload = protocol.program_payload(analyzed, "prog0")
    rehydrated = json.loads(json.dumps(payload))
    assert rehydrated["program_id"] == "prog0"
    assert set(rehydrated["functions"]) == set(analyzed.functions)
    assert rehydrated["report"] == analyzed.report()
    for name, entry in rehydrated["structs"].items():
        assert str(ctype_from_json(entry["type"])) + ";" == entry["c"]


def test_procedure_payload_matches_in_process(analyzed):
    payload = json.loads(
        json.dumps(protocol.procedure_payload(analyzed, "prog0", "total"))
    )
    assert payload["signature"] == analyzed.signature("total")
    assert payload["scheme_text"] == str(analyzed.scheme("total"))
    # The scheme JSON round-trips through the established decoder.
    from repro.core.schemes import TypeScheme

    assert str(TypeScheme.from_json(payload["scheme"])) == str(analyzed.scheme("total"))
    # Struct layouts cover exactly the procedure's reachable structs.
    assert set(payload["structs"]) == set(analyzed.procedure_structs("total"))
    # Parameters arrive with displayed C types.
    expected = analyzed.functions["total"]
    assert [p["name"] for p in payload["params"]] == expected.param_names
    assert [ctype_from_json(p["type"]) for p in payload["params"]] == list(
        expected.function_type.params
    )
    assert ctype_from_json(payload["return"]["type"]) == expected.function_type.ret


def test_procedure_payload_unknown_procedure(analyzed):
    with pytest.raises(ProtocolError) as err:
        protocol.procedure_payload(analyzed, "prog0", "missing")
    assert err.value.code == ErrorCode.UNKNOWN_PROCEDURE


def test_analyze_payload_summary_and_full(analyzed):
    summary = protocol.analyze_payload(analyzed, "prog0", cached=False)
    assert summary["procedures"] == sorted(analyzed.functions)
    assert "program" not in summary
    full = protocol.analyze_payload(analyzed, "prog0", cached=True, full=True)
    assert full["cached"] is True
    assert full["program"]["report"] == analyzed.report()


def test_ctype_json_survives_recursive_struct(analyzed):
    for struct in analyzed.procedure_structs("total").values():
        assert ctype_from_json(json.loads(json.dumps(ctype_to_json(struct)))) == struct
