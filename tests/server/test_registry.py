"""Program registry: content addressing, LRU bounds, thread safety."""

from concurrent.futures import ThreadPoolExecutor

from repro.server.registry import ProgramRegistry


def test_make_id_depends_on_all_inputs():
    base = ProgramRegistry.make_id("asm", "mov eax, 1", "env")
    assert base == ProgramRegistry.make_id("asm", "mov eax, 1", "env")
    assert base != ProgramRegistry.make_id("c", "mov eax, 1", "env")
    assert base != ProgramRegistry.make_id("asm", "mov eax, 2", "env")
    assert base != ProgramRegistry.make_id("asm", "mov eax, 1", "other-env")
    # The separator keeps (kind+source) splits from colliding.
    assert ProgramRegistry.make_id("a", "bc") != ProgramRegistry.make_id("ab", "c")


def test_get_admit_and_stats():
    registry = ProgramRegistry(capacity=4)
    assert registry.get("missing") is None
    registry.admit("k1", "types-1")
    assert registry.get("k1") == "types-1"
    assert "k1" in registry and len(registry) == 1
    snapshot = registry.snapshot()
    assert snapshot["hits"] == 1 and snapshot["misses"] == 1
    assert 0 < snapshot["hit_rate"] < 1


def test_lru_eviction_order():
    registry = ProgramRegistry(capacity=2)
    registry.admit("a", 1)
    registry.admit("b", 2)
    registry.get("a")  # refresh a; b is now least recent
    registry.admit("c", 3)
    assert registry.get("b") is None
    assert registry.get("a") == 1 and registry.get("c") == 3
    assert registry.evictions == 1


def test_concurrent_admits_and_gets_are_safe():
    registry = ProgramRegistry(capacity=64)

    def worker(base: int) -> int:
        found = 0
        for i in range(200):
            key = f"k{(base * 7 + i) % 100}"
            registry.admit(key, key)
            if registry.get(key) is not None:
                found += 1
        return found

    with ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(worker, range(8)))
    assert all(count > 0 for count in results)
    assert len(registry) <= 64
