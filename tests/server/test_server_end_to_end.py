"""The daemon over a real socket: fidelity, sessions, corpus, concurrency, errors.

The fidelity contract is exact: whatever a client receives over TCP must be
byte-identical (as canonical JSON) to the payload built from an in-process
:func:`repro.analyze_program` run of the same source.
"""

import asyncio
import contextlib
import json
import socket
import threading

import pytest

from repro import analyze_program
from repro.eval.workloads import make_cluster, make_workload
from repro.server import (
    AsyncTypeQueryClient,
    ServerConfig,
    TypeQueryClient,
    TypeQueryError,
    TypeQueryServer,
    protocol,
)

# ---------------------------------------------------------------------------
# Harness: a real server on a real socket, in a background thread
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def running_server(**config_kwargs):
    """Run a TypeQueryServer on its own event loop; yields (host, port, server)."""
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("allow_shutdown", True)
    started = threading.Event()
    info = {}
    loop = asyncio.new_event_loop()

    async def runner():
        server = TypeQueryServer(ServerConfig(**config_kwargs))
        host, port = await server.start()
        info.update(host=host, port=port, server=server, stop=server._stopping)
        started.set()
        await server.serve_forever()

    def run():
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(runner())
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="type-server", daemon=True)
    thread.start()
    assert started.wait(60), "server failed to start"
    try:
        yield info["host"], info["port"], info["server"]
    finally:
        loop.call_soon_threadsafe(info["stop"].set)
        thread.join(timeout=60)
        assert not thread.is_alive(), "server thread failed to stop"


@pytest.fixture(scope="module")
def server():
    with running_server() as (host, port, instance):
        yield host, port, instance


@pytest.fixture(scope="module")
def suite():
    """A miniature version of the evaluation suite: a cluster + standalones."""
    workloads = make_cluster("srvcluster", members=2, shared_functions=8, member_functions=3, seed=7)
    workloads.append(make_workload("srv_solo", 6, seed=11))
    workloads.append(make_workload("srv_tiny", 4, seed=13))
    return workloads


@pytest.fixture(scope="module")
def expected(suite):
    """In-process reference analyses, one per suite program."""
    return {workload.name: analyze_program(workload.program) for workload in suite}


def canonical(payload) -> str:
    """Canonical JSON of the *type content* of a payload.

    Run statistics (wall-clock timings, cache hit counts) legitimately differ
    between a warm server and a cold in-process run; everything else --
    signatures, schemes, sketches, struct layouts, reports -- must be
    byte-identical.
    """
    if isinstance(payload, dict):
        payload = {key: value for key, value in payload.items() if key != "stats"}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


# ---------------------------------------------------------------------------
# Round-trip fidelity (the acceptance criterion)
# ---------------------------------------------------------------------------


def test_analyze_and_query_match_in_process(server, suite, expected):
    host, port, _ = server
    with TypeQueryClient(host, port) as client:
        for workload in suite:
            reference = expected[workload.name]
            result = client.analyze(str(workload.program), kind="asm")
            assert result["signatures"] == {
                name: reference.signature(name) for name in sorted(reference.functions)
            }
            program_id = result["program_id"]

            # Whole-program payload: byte-identical canonical JSON.
            remote = client.query(program_id)
            local = protocol.program_payload(reference, program_id)
            assert canonical(remote) == canonical(local)

            # Every procedure: signature, scheme, sketches, struct layout.
            for name in reference.functions:
                remote_proc = client.query(program_id, name)
                local_proc = protocol.procedure_payload(reference, program_id, name)
                assert canonical(remote_proc) == canonical(local_proc)


def test_c_source_kind_matches_compiled(server, suite, expected):
    host, port, _ = server
    workload = suite[-1]
    reference = expected[workload.name]
    with TypeQueryClient(host, port) as client:
        result = client.analyze(workload.source, kind="c", full=True)
        assert result["program"]["report"] == reference.report()


def test_repeat_analyze_is_served_from_registry(server, suite):
    host, port, instance = server
    workload = suite[0]
    with TypeQueryClient(host, port) as client:
        first = client.analyze(str(workload.program))
        again = client.analyze(str(workload.program))
    assert again["cached"] is True
    assert again["program_id"] == first["program_id"]
    assert instance.registry.hits >= 1


# ---------------------------------------------------------------------------
# Concurrency: N asyncio clients, byte-identical answers
# ---------------------------------------------------------------------------


def test_eight_concurrent_clients_get_identical_answers(server, suite, expected):
    host, port, _ = server
    clients = 8
    workload = suite[1 % len(suite)]
    reference = expected[workload.name]
    source = str(workload.program)
    procedures = sorted(reference.functions)

    async def one_client(index: int):
        client = await AsyncTypeQueryClient.connect(host, port, connect_retries=5)
        try:
            result = await client.analyze(source)
            program_id = result["program_id"]
            payloads = {"program": await client.query(program_id)}
            for name in procedures:
                payloads[name] = await client.query(program_id, name)
            return payloads
        finally:
            await client.aclose()

    async def fan_out():
        return await asyncio.gather(*(one_client(i) for i in range(clients)))

    all_payloads = asyncio.run(fan_out())
    assert len(all_payloads) == clients

    program_id = all_payloads[0]["program"]["program_id"]
    reference_payloads = {
        "program": protocol.program_payload(reference, program_id)
    }
    for name in procedures:
        reference_payloads[name] = protocol.procedure_payload(
            reference, program_id, name
        )
    for payloads in all_payloads:
        for key, payload in payloads.items():
            assert canonical(payload) == canonical(reference_payloads[key])


def test_concurrent_distinct_programs(server, suite, expected):
    host, port, _ = server

    async def analyze_one(workload):
        client = await AsyncTypeQueryClient.connect(host, port, connect_retries=5)
        try:
            result = await client.analyze(str(workload.program))
            return workload.name, result["signatures"]
        finally:
            await client.aclose()

    async def fan_out():
        return await asyncio.gather(*(analyze_one(w) for w in suite))

    for name, signatures in asyncio.run(fan_out()):
        reference = expected[name]
        assert signatures == {
            proc: reference.signature(proc) for proc in sorted(reference.functions)
        }


# ---------------------------------------------------------------------------
# Sessions: incremental re-analysis over the wire
# ---------------------------------------------------------------------------

SESSION_SOURCE = """
int leaf(int x) {
    return x + 1;
}

int caller(int x) {
    return leaf(x) + 2;
}

int bystander(int x) {
    return x * 2;
}
"""

SESSION_EDITED = SESSION_SOURCE.replace("return x + 1;", "return x + 3;")


def test_session_edit_resolves_only_invalidation_cone(server):
    host, port, _ = server
    with TypeQueryClient(host, port) as client:
        opened = client.session_open(SESSION_SOURCE, kind="c")
        session_id = opened["session_id"]
        assert set(opened["procedures"]) == {"leaf", "caller", "bystander"}

        edited = client.session_edit(session_id, SESSION_EDITED, kind="c")
        # Editing the leaf invalidates it and its transitive caller -- and
        # nothing else; the bystander is served from the summary store.
        assert edited["invalidated_procedures"] == ["caller", "leaf"]
        assert set(edited["solved_procedures"]) == {"caller", "leaf"}
        assert "bystander" in edited["cached_procedures"]
        assert edited["edits"] == 1

        # The edited program is queryable and exact.
        from repro.frontend import compile_c

        reference = analyze_program(compile_c(SESSION_EDITED).program)
        remote = client.query(edited["program_id"], "leaf")
        assert remote["signature"] == reference.signature("leaf")

        closed = client.session_close(session_id)
        assert closed["closed"] is True
        with pytest.raises(TypeQueryError) as err:
            client.session_edit(session_id, SESSION_SOURCE, kind="c")
        assert err.value.code == protocol.ErrorCode.UNKNOWN_SESSION


# ---------------------------------------------------------------------------
# Corpus: batched multi-program submission with shared summaries
# ---------------------------------------------------------------------------


def test_corpus_batch_reuses_shared_sccs(suite, expected):
    # A dedicated server so cluster-sharing statistics are not polluted by
    # other tests' cache traffic.
    with running_server() as (host, port, _):
        cluster = [w for w in suite if w.cluster == "srvcluster"]
        with TypeQueryClient(host, port) as client:
            result = client.corpus(
                {w.name: {"source": str(w.program), "kind": "asm"} for w in cluster}
            )
            members = result["programs"]
            assert set(members) == {w.name for w in cluster}
            # The second cluster member shares the statically-linked library,
            # so it must hit the shared summary store.
            total_hits = sum(entry["cache_hits"] for entry in members.values())
            assert total_hits > 0
            # Every member is immediately queryable with exact results.
            for workload in cluster:
                reference = expected[workload.name]
                entry = members[workload.name]
                remote = client.query(entry["program_id"])
                assert remote["report"] == reference.report()


# ---------------------------------------------------------------------------
# Typed errors and protocol edge cases
# ---------------------------------------------------------------------------


def test_typed_errors(server):
    host, port, _ = server
    with TypeQueryClient(host, port) as client:
        with pytest.raises(TypeQueryError) as err:
            client.query("0" * 64)
        assert err.value.code == protocol.ErrorCode.UNKNOWN_PROGRAM

        result = client.analyze(SESSION_SOURCE, kind="c")
        with pytest.raises(TypeQueryError) as err:
            client.query(result["program_id"], "no_such_procedure")
        assert err.value.code == protocol.ErrorCode.UNKNOWN_PROCEDURE

        with pytest.raises(TypeQueryError) as err:
            client.analyze("int broken(", kind="c")
        assert err.value.code == protocol.ErrorCode.PARSE_ERROR

        with pytest.raises(TypeQueryError) as err:
            client.request("analyze", {"source": SESSION_SOURCE, "kind": "rust"})
        assert err.value.code == protocol.ErrorCode.INVALID_PARAMS

        with pytest.raises(TypeQueryError) as err:
            client.request("corpus", {"programs": {}})
        assert err.value.code == protocol.ErrorCode.INVALID_PARAMS

        with pytest.raises(TypeQueryError) as err:
            client.request("session.close", {"session_id": "nope"})
        assert err.value.code == protocol.ErrorCode.UNKNOWN_SESSION


def test_raw_socket_version_and_framing_errors(server):
    host, port, _ = server
    with socket.create_connection((host, port), timeout=30) as sock:
        handle = sock.makefile("rwb")
        # Wrong protocol version.
        handle.write(b'{"v": 99, "id": 1, "op": "ping", "params": {}}\n')
        handle.flush()
        reply = json.loads(handle.readline())
        assert reply["ok"] is False
        assert reply["error"]["code"] == protocol.ErrorCode.UNSUPPORTED_VERSION
        assert reply["id"] == 1

        # Garbage line: typed bad_request, connection stays usable.
        handle.write(b"this is not json\n")
        handle.flush()
        reply = json.loads(handle.readline())
        assert reply["error"]["code"] == protocol.ErrorCode.BAD_REQUEST

        # Unknown op.
        handle.write(b'{"v": 1, "id": 2, "op": "frobnicate", "params": {}}\n')
        handle.flush()
        reply = json.loads(handle.readline())
        assert reply["error"]["code"] == protocol.ErrorCode.UNKNOWN_OP

        # The connection survived all three errors.
        handle.write(protocol.encode(protocol.make_request("ping", {}, 3)))
        handle.flush()
        reply = json.loads(handle.readline())
        assert reply["ok"] is True and reply["result"]["server"] == protocol.SERVER_NAME


def test_oversized_request_reaches_client_as_typed_error():
    with running_server(max_request_bytes=4096) as (host, port, _):
        with TypeQueryClient(host, port) as client:
            # The server's error reply carries id=null (the line never
            # parsed); the client must still surface the typed code.
            with pytest.raises(TypeQueryError) as err:
                client.analyze("x" * 8192)
            assert err.value.code == protocol.ErrorCode.TOO_LARGE


def test_failed_session_open_releases_its_slot():
    with running_server(max_sessions=1) as (host, port, instance):
        with TypeQueryClient(host, port) as client:
            with pytest.raises(TypeQueryError) as err:
                client.session_open("int broken(", kind="c")
            assert err.value.code == protocol.ErrorCode.PARSE_ERROR
            assert len(instance._sessions) == 0
            # The slot is free: a valid open succeeds.
            opened = client.session_open(SESSION_SOURCE, kind="c")
            client.session_close(opened["session_id"])


def test_oversized_request_line_is_rejected():
    with running_server(max_request_bytes=4096) as (host, port, _):
        with socket.create_connection((host, port), timeout=30) as sock:
            handle = sock.makefile("rwb")
            handle.write(b'{"v": 1, "id": 1, "op": "ping", "pad": "' + b"x" * 8192 + b'"}\n')
            handle.flush()
            reply = json.loads(handle.readline())
            assert reply["ok"] is False
            assert reply["error"]["code"] == protocol.ErrorCode.TOO_LARGE
            # Framing is unrecoverable: the server hangs up afterwards.
            assert handle.readline() == b""


def test_overloaded_gate(server, suite):
    # max_pending=0 means the gate admits nothing: a deterministic stand-in
    # for "too many analyses queued".
    with running_server(max_pending=0) as (host, port, _):
        with TypeQueryClient(host, port) as client:
            assert client.ping()["server"] == protocol.SERVER_NAME  # cheap ops unaffected
            with pytest.raises(TypeQueryError) as err:
                client.analyze(str(suite[0].program))
            assert err.value.code == protocol.ErrorCode.OVERLOADED


def test_session_cap_bounds_open_sessions():
    with running_server(max_sessions=1) as (host, port, _):
        with TypeQueryClient(host, port) as client:
            opened = client.session_open(SESSION_SOURCE, kind="c")
            with pytest.raises(TypeQueryError) as err:
                client.session_open(SESSION_SOURCE, kind="c")
            assert err.value.code == protocol.ErrorCode.OVERLOADED
            # Closing frees the slot.
            client.session_close(opened["session_id"])
            reopened = client.session_open(SESSION_SOURCE, kind="c")
            client.session_close(reopened["session_id"])


def test_concurrent_identical_submissions_analyze_once(suite):
    """In-flight dedup: N clients racing the same cold program -> one solve."""
    with running_server() as (host, port, instance):
        workload = suite[-1]
        source = str(workload.program)

        async def submit():
            client = await AsyncTypeQueryClient.connect(host, port, connect_retries=5)
            try:
                return await client.analyze(source)
            finally:
                await client.aclose()

        async def fan_out():
            return await asyncio.gather(*(submit() for _ in range(8)))

        results = asyncio.run(fan_out())
        program_id = results[0]["program_id"]
        assert all(r["program_id"] == program_id for r in results)
        # Exactly one analysis was admitted; the others were folded into the
        # leader's flight (or served from the registry if they arrived after
        # it finished).
        assert instance.registry.admits == 1
        # Coalesced followers answer from *this* flight's solve, so they
        # report cached=False exactly like the leader -- every reply that
        # joined the flight is byte-identical, cached flag included.
        coalesced = instance.coalesced_total
        assert sum(1 for r in results if not r["cached"]) == 1 + coalesced
        assert len({canonical(r) for r in results if not r["cached"]}) == 1


def test_shutdown_verb_gating(server, suite):
    with running_server(allow_shutdown=False) as (host, port, _):
        with TypeQueryClient(host, port) as client:
            with pytest.raises(TypeQueryError) as err:
                client.shutdown()
            assert err.value.code == protocol.ErrorCode.SHUTDOWN_DISABLED


def test_stats_surface(server):
    host, port, _ = server
    with TypeQueryClient(host, port) as client:
        client.ping()
        stats = client.stats()
    assert stats["requests_served"] >= 1
    assert "registry" in stats and "store" in stats
    assert stats["sessions_open"] == 0


def test_stats_per_program_stage_timings(server, suite):
    """``stats`` with a program_id reports where the solver spent its time."""
    workload = suite[-1]
    host, port, _ = server
    with TypeQueryClient(host, port) as client:
        submitted = client.analyze(workload.source, kind="c")
        stats = client.stats(submitted["program_id"])

        assert stats["program_id"] == submitted["program_id"]
        assert stats["procedures"] == submitted["procedures"]
        stage = stats["stage_seconds"]
        for name in ("graph", "saturate", "simplify", "sketch"):
            assert stage[f"{name}_seconds"] >= 0.0
        assert stage["total_seconds"] == pytest.approx(
            stage["graph_seconds"]
            + stage["saturate_seconds"]
            + stage["simplify_seconds"]
            + stage["sketch_seconds"]
        )
        # This analysis solved at least one SCC cold somewhere in the server's
        # lifetime; the record reflects real structure, not zeros.
        assert stage["graph_nodes"] >= 0 and stats["solve_seconds"] > 0.0
        assert stats["constraints"] > 0

        # Unknown programs get the typed error, same as query.
        with pytest.raises(TypeQueryError) as err:
            client.stats("prog_does_not_exist")
        assert err.value.code == protocol.ErrorCode.UNKNOWN_PROGRAM


def test_stats_stage_timings_nonzero_for_cold_analysis():
    """On a fresh daemon the first analysis must attribute real time to stages."""
    source = "int twice(int x) { return x + x; }\nint use(int y) { return twice(y); }\n"
    with running_server() as (host, port, _):
        with TypeQueryClient(host, port) as client:
            submitted = client.analyze(source, kind="c")
            stage = client.stats(submitted["program_id"])["stage_seconds"]
    assert stage["sccs_timed"] >= 1
    assert stage["total_seconds"] > 0.0
    assert stage["sketch_seconds"] > 0.0
    assert stage["graph_nodes"] > 0 and stage["graph_edges"] > 0


def test_process_backend_server_serves_worker_stats():
    """A --backend processes daemon answers identically and exposes the
    per-worker SolveStats merge through the ``stats`` verb."""
    source = """
    struct box { int value; int fd; };

    int leaf_a(const struct box * b) { return b->value; }
    int leaf_b(const struct box * b) { return b->fd; }
    int leaf_c(int x) { return x * 2; }
    int leaf_d(int x, int y) { return x - y; }
    int leaf_e(int x) { return x + 7; }

    int mid_one(const struct box * b, int x) { return leaf_a(b) + leaf_c(x); }
    int mid_two(const struct box * b, int y) { return leaf_b(b) + leaf_d(y, 3); }

    int top(struct box * b, int x) { return mid_one(b, x) + mid_two(b, x) + leaf_e(x); }
    """
    from repro.frontend import compile_c

    expected = analyze_program(compile_c(source).program)
    with running_server(backend="processes", backend_workers=2) as (host, port, _):
        with TypeQueryClient(host, port) as client:
            submitted = client.analyze(source, kind="c", full=True)
            # Fidelity holds across the process boundary and the socket.
            assert submitted["signatures"] == {
                name: expected.signature(name) for name in sorted(expected.functions)
            }
            assert submitted["program"]["report"] == expected.report()

            program_stats = client.stats(submitted["program_id"])
            assert program_stats["executor"] == "processes"
            assert program_stats["worker_failed"] == 0
            workers = program_stats["worker_stats"]
            assert workers, "per-worker SolveStats merge missing"
            assert sum(entry["sccs_timed"] for entry in workers.values()) > 0

            daemon_stats = client.stats()
            assert daemon_stats["backend"] == "processes"
            pool = daemon_stats["procpool"]
            assert pool["max_workers"] == 2
            assert pool["chunks_dispatched"] >= 1
            assert pool["workers"], "pool-level per-worker stats missing"


@pytest.mark.parametrize("backend", ["serial", "threads", "processes", "auto"])
def test_happy_path_identical_under_every_backend(backend, suite, expected):
    """The analyze -> query happy path, byte-identical whichever wave backend
    the daemon was started with (so backend regressions surface in tier-1)."""
    workload = suite[-1]
    reference = expected[workload.name]
    with running_server(backend=backend) as (host, port, _):
        with TypeQueryClient(host, port) as client:
            result = client.analyze(str(workload.program), kind="asm")
            assert result["signatures"] == {
                name: reference.signature(name) for name in sorted(reference.functions)
            }
            program_id = result["program_id"]
            remote = client.query(program_id)
            local = protocol.program_payload(reference, program_id)
            assert canonical(remote) == canonical(local)
