"""Unit tests for the consistent-hash ring (repro.fleet.ring)."""

import collections

import pytest

from repro.fleet.ring import HashRing, _point


KEYS = [f"program-{i}" for i in range(2000)]


def test_empty_ring_raises():
    ring = HashRing()
    with pytest.raises(LookupError):
        ring.node_for("anything")
    assert list(ring.nodes_for("anything")) == []
    assert len(ring) == 0


def test_single_node_owns_everything():
    ring = HashRing([0])
    assert all(ring.node_for(key) == 0 for key in KEYS)
    assert list(ring.nodes_for("k")) == [0]


def test_placement_is_deterministic_across_instances():
    a = HashRing([0, 1, 2])
    b = HashRing([2, 0, 1])  # insertion order must not matter
    assert [a.node_for(k) for k in KEYS] == [b.node_for(k) for k in KEYS]


def test_add_is_idempotent():
    ring = HashRing([0, 1])
    before = [ring.node_for(k) for k in KEYS]
    ring.add(1)
    assert [ring.node_for(k) for k in KEYS] == before
    assert len(ring) == 2


def test_nodes_for_yields_every_node_exactly_once():
    ring = HashRing(range(5))
    for key in KEYS[:100]:
        order = list(ring.nodes_for(key))
        assert sorted(order) == list(range(5))
        assert order[0] == ring.node_for(key)


def test_distribution_is_roughly_balanced():
    ring = HashRing(range(4), replicas=64)
    counts = collections.Counter(ring.node_for(k) for k in KEYS)
    assert set(counts) == set(range(4))
    # With 64 virtual replicas the worst shard should stay within a small
    # constant factor of fair share; this bound is loose on purpose.
    assert max(counts.values()) < 3 * len(KEYS) / 4


def test_removal_only_remaps_the_dead_nodes_arc():
    ring = HashRing(range(4))
    before = {k: ring.node_for(k) for k in KEYS}
    ring.remove(2)
    moved = 0
    for key, owner in before.items():
        after = ring.node_for(key)
        if owner == 2:
            assert after != 2  # dead node's keys must move
        else:
            # the stability property: surviving arcs never remap
            assert after == owner
            moved += after != owner
    assert moved == 0


def test_failover_order_matches_post_removal_placement():
    """The second preference of a key is exactly where it lands if the first
    dies -- the invariant the router's requeue logic relies on."""
    ring = HashRing(range(4))
    for key in KEYS[:200]:
        first, second = list(ring.nodes_for(key))[:2]
        clone = HashRing(range(4))
        clone.remove(first)
        assert clone.node_for(key) == second


def test_remove_unknown_node_is_a_noop():
    ring = HashRing([0, 1])
    ring.remove(7)
    assert len(ring) == 2


def test_point_is_stable():
    # Pin the hash construction: changing it would silently remap every
    # deployed fleet's placement.
    assert _point("shard:0:0") == _point("shard:0:0")
    assert _point("shard:0:0") != _point("shard:0:1")
