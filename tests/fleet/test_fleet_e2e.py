"""End-to-end fleet tests: byte-identity, failover, shared warmth.

The harness runs the real topology -- a store daemon thread, real shard
subprocesses via ``python -m repro.server``, and the router on a background
event loop -- and drives it through the public client, exactly as an operator
deployment would.
"""

import asyncio
import contextlib
import json
import os
import signal
import threading
import time

import pytest

from repro.fleet.launcher import FleetConfig, FleetLauncher
from repro.fleet.router import FleetRouter
from repro.gen import GenProfile, generate_corpus
from repro.server import RetryPolicy, TypeQueryClient, TypeQueryError
from repro.server.app import ServerConfig, TypeQueryServer

CORPUS = generate_corpus(6, seed=4242, profile=GenProfile.smoke(), name_prefix="fleet")


def fingerprint(payload):
    import hashlib

    scrubbed = {k: v for k, v in payload.items() if k not in ("program_id", "stats")}
    return hashlib.sha256(
        json.dumps(scrubbed, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()


# ---------------------------------------------------------------------------
# Harnesses
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def running_single_server():
    """One in-process TypeQueryServer on a background loop (reference pass)."""
    started = threading.Event()
    info = {}
    loop = asyncio.new_event_loop()

    async def runner():
        server = TypeQueryServer(ServerConfig(port=0))
        host, port = await server.start()
        info.update(host=host, port=port, stop=server._stopping)
        started.set()
        await server.serve_forever()

    thread = threading.Thread(
        target=lambda: (asyncio.set_event_loop(loop), loop.run_until_complete(runner())),
        daemon=True,
    )
    thread.start()
    assert started.wait(60), "single server failed to start"
    try:
        yield info["host"], info["port"]
    finally:
        loop.call_soon_threadsafe(info["stop"].set)
        thread.join(timeout=60)
        loop.close()


@contextlib.contextmanager
def running_fleet(shards=2, **config_kwargs):
    """Store daemon + shard subprocesses + router; yields (host, port, launcher, router)."""
    launcher = FleetLauncher(FleetConfig(shards=shards, port=0, **config_kwargs))
    launcher.start()
    started = threading.Event()
    info = {}
    loop = asyncio.new_event_loop()

    async def runner():
        router = FleetRouter(launcher.router_config())
        host, port = await router.start()
        info.update(host=host, port=port, router=router, stop=router._stopping)
        started.set()
        await router.serve_forever()

    thread = threading.Thread(
        target=lambda: (asyncio.set_event_loop(loop), loop.run_until_complete(runner())),
        daemon=True,
    )
    thread.start()
    try:
        assert started.wait(120), "fleet router failed to start"
        yield info["host"], info["port"], launcher, info["router"]
    finally:
        if "stop" in info:
            loop.call_soon_threadsafe(info["stop"].set)
        thread.join(timeout=60)
        loop.close()
        launcher.close()


def fleet_client(host, port):
    return TypeQueryClient(
        host, port, timeout=300.0, connect_retries=25,
        retry=RetryPolicy(attempts=6, base_delay=0.2),
    )


# ---------------------------------------------------------------------------
# The acceptance battery (one fleet, several properties -- bring-up is the
# expensive part, so the module shares it)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def reference_fingerprints():
    with running_single_server() as (host, port):
        with TypeQueryClient(host, port, timeout=300.0) as client:
            out = {}
            for program in CORPUS:
                result = client.analyze(program.source, kind="c")
                out[program.name] = fingerprint(client.query(result["program_id"]))
            return out


def test_fleet_is_byte_identical_and_survives_shard_death(reference_fingerprints):
    kill_at = 2
    with running_fleet(shards=2) as (host, port, launcher, router):
        with fleet_client(host, port) as client:
            # Both shards answer health through the router, mounted on the
            # shared socket store.
            health = client.health()
            assert health["healthy"] and health["shards_healthy"] == 2
            assert all(
                row["store_backend"] == "socket"
                for row in health["shards"].values()
            )

            ids = {}
            killed_pid = None
            for index, program in enumerate(CORPUS):
                if index == kill_at:
                    # Kill the shard that *owns* an already-analyzed program,
                    # so the later re-query must exercise failover re-homing.
                    owner = int(router._owners[ids[CORPUS[0].name]]["shard"])
                    killed_pid = launcher.processes[owner].pid
                    os.kill(killed_pid, signal.SIGKILL)
                result = client.analyze(program.source, kind="c")
                ids[program.name] = result["program_id"]
                payload = client.query(result["program_id"])
                assert fingerprint(payload) == reference_fingerprints[program.name], (
                    f"fleet result for {program.name} diverged from single server"
                )
            assert killed_pid is not None

            # Re-query everything: programs homed on the dead shard are
            # re-analyzed on the survivor (lazy replication) -- still
            # byte-identical, no client-visible error.
            for program in CORPUS:
                payload = client.query(ids[program.name])
                assert fingerprint(payload) == reference_fingerprints[program.name]

            # The router noticed the death and kept exactly one shard.
            health = client.health()
            assert health["healthy"] and health["shards_healthy"] == 1
            stats = client.stats()
            assert stats["role"] == "router"
            dead = [s for s in stats["shards"].values() if not s["healthy"]]
            assert len(dead) == 1 and dead[0]["failures"] >= 1

            # Shared warmth: the surviving shard served summaries it never
            # solved straight from the socket store.
            (live_id,) = [
                shard_id
                for shard_id, row in health["shards"].items()
                if row.get("healthy")
            ]
            shard_stats = client.request("stats", {"shard": int(live_id)})
            assert shard_stats["store"]["remote_hits"] > 0

            # The typed failure counter incremented on the router.
            metrics = client.metrics()["metrics"]
            failed = sum(
                row["value"]
                for name, row in metrics.items()
                if name.startswith("fleet_shard_failed_total")
            )
            assert failed >= 1


def test_fleet_verbs_and_session_rehoming():
    with running_fleet(shards=2) as (host, port, launcher, router):
        with fleet_client(host, port) as client:
            ping = client.ping()
            assert ping["role"] == "router" and ping["shards"] == 2

            # Typed errors pass through untouched.
            with pytest.raises(TypeQueryError) as err:
                client.query("no-such-program")
            assert err.value.code == "unknown_program"

            # A session survives its shard's death: the edit re-homes onto
            # the other shard under the same client-visible session id.
            program = CORPUS[0]
            opened = client.session_open(program.source, kind="c")
            session_id = opened["session_id"]
            owner = router._sessions[session_id]["shard"]
            os.kill(launcher.processes[int(owner)].pid, signal.SIGKILL)
            time.sleep(0.2)
            edited = client.session_edit(
                session_id, program.source + "\n", kind="c"
            )
            assert edited["session_id"] == session_id
            assert edited["edits"] == 1
            closed = client.session_close(session_id)
            assert closed["closed"] is True
