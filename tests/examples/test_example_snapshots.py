"""Golden snapshot tests for the examples' printed output.

``examples/corpus_service.py`` and ``examples/type_server.py`` double as
living documentation of the service and server subsystems; until now only CI
smoke ran them, so a drifting print or a renamed stat silently rotted the
walkthroughs.  Each test runs the script exactly as a user would and compares
its stdout -- with run-varying tokens (timings, ports, content hashes)
normalized away -- against a golden file in ``tests/examples/golden/``.

To refresh after an intentional output change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/examples -q

and commit the updated golden files with the change that caused them.
"""

import os
import re
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")

_NORMALIZATIONS = [
    (re.compile(r"\b[0-9a-f]{8,}\b"), "<HEX>"),          # content hashes, session ids
    (re.compile(r"\bport \d+\b"), "port <PORT>"),
    (re.compile(r"\d+\.\d+"), "<F>"),                      # all timings/ratios
]


def _normalize(text: str) -> str:
    for pattern, replacement in _NORMALIZATIONS:
        text = pattern.sub(replacement, text)
    return text.rstrip() + "\n"


def _run_example(script: str) -> str:
    out = subprocess.run(
        [sys.executable, os.path.join("examples", script)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=300,
        env={
            "PYTHONPATH": os.path.join(REPO_ROOT, "src"),
            "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
            "PYTHONHASHSEED": "0",
        },
    )
    assert out.returncode == 0, f"{script} failed:\n{out.stdout}\n{out.stderr}"
    return _normalize(out.stdout)


def _check_golden(script: str, name: str) -> None:
    actual = _run_example(script)
    golden_path = os.path.join(GOLDEN_DIR, name)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(golden_path, "w", encoding="utf-8") as handle:
            handle.write(actual)
        pytest.skip(f"regenerated {golden_path}")
    assert os.path.exists(golden_path), (
        f"golden file {golden_path} missing; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    with open(golden_path, "r", encoding="utf-8") as handle:
        expected = handle.read()
    assert actual == expected, (
        f"{script} output drifted from its golden snapshot; if intentional, "
        f"refresh with REPRO_REGEN_GOLDEN=1 and commit the new golden file"
    )


def test_corpus_service_example_matches_golden():
    _check_golden("corpus_service.py", "corpus_service.txt")


def test_type_server_example_matches_golden():
    _check_golden("type_server.py", "type_server.txt")
