"""Tests for the mini-C frontend: parsing, type checking, code generation."""

import pytest

from repro.core.ctype import IntType, PointerType, StructRef
from repro.frontend import (
    CodegenOptions,
    ParseError,
    TypeCheckError,
    compile_c,
    parse_c,
    typecheck,
)
from repro.ir import Call, Mov, Push, analyze_stack, discover_interface


LINKED_LIST = """
struct LL {
    struct LL * next;
    int handle;
};

int close_last(const struct LL * list) {
    while (list->next != NULL) {
        list = list->next;
    }
    return close(list->handle);
}
"""


POINTERS = """
struct point {
    int x;
    int y;
};

int get_y(const struct point * p) {
    return p->y;
}

void set_y(struct point * p, int value) {
    p->y = value;
}

int sum(struct point * p) {
    int total;
    total = get_y(p) + p->x;
    return total;
}
"""


def test_parse_struct_and_function():
    unit = parse_c(LINKED_LIST)
    assert len(unit.structs) == 1
    assert unit.structs[0].name == "LL"
    assert unit.function("close_last").params[0].name == "list"


def test_typecheck_records_layout():
    checked = typecheck(parse_c(LINKED_LIST))
    layout = checked.layout("LL")
    assert layout.field_offset("next") == 0
    assert layout.field_offset("handle") == 4
    assert layout.size == 8


def test_ground_truth_const_params():
    result = compile_c(LINKED_LIST)
    truth = result.ground_truth.function("close_last")
    assert truth.arity == 1
    assert truth.param_const == [True]
    assert isinstance(truth.params[0][1], PointerType)
    assert truth.return_type == IntType(32, True)


def test_compiled_code_shape():
    result = compile_c(LINKED_LIST)
    proc = result.program.procedure("close_last")
    text = str(proc)
    assert "call close" in text
    assert "push ebp" in text
    assert "leave" in text
    # interface discovery sees one stack argument and a return value
    interface = discover_interface(proc)
    assert interface.stack_args == (4,)
    assert interface.has_return
    # the stack is balanced at the return
    states = analyze_stack(proc)
    ret_index = len(proc.instructions) - 1
    assert states[ret_index].esp == 0


def test_externs_are_declared():
    result = compile_c(LINKED_LIST)
    assert "close" in result.program.externs


def test_multi_function_program():
    result = compile_c(POINTERS)
    assert set(result.program.procedures) == {"get_y", "set_y", "sum"}
    truth = result.ground_truth
    assert truth.function("get_y").param_const == [True]
    assert truth.function("set_y").param_const == [False, False]
    assert truth.function("set_y").return_type is None
    assert "call get_y" in str(result.program.procedure("sum"))


def test_xor_zero_option():
    source = "int f(void) { return 0; }"
    with_xor = compile_c(source, CodegenOptions(xor_zero=True))
    without_xor = compile_c(source, CodegenOptions(xor_zero=False))
    assert "xor eax, eax" in str(with_xor.program.procedure("f"))
    assert "xor eax, eax" not in str(without_xor.program.procedure("f"))


def test_stack_slot_reuse_option():
    source = """
    int f(int flag) {
        if (flag) {
            int a;
            a = 1;
            return a;
        } else {
            int b;
            b = 2;
            return b;
        }
    }
    """
    reused = compile_c(source, CodegenOptions(reuse_stack_slots=True))
    separate = compile_c(source, CodegenOptions(reuse_stack_slots=False))
    reused_text = str(reused.program.procedure("f"))
    assert reused.program.procedure("f").size >= 10
    # With reuse both locals share [ebp-4]; without, one lives at [ebp-8].
    assert "[ebp-8]" not in reused_text
    assert "[ebp-8]" in str(separate.program.procedure("f"))


def test_malloc_cast_and_sizeof():
    source = """
    struct node {
        struct node * next;
        int value;
    };

    struct node * make_node(int value) {
        struct node * n;
        n = (struct node *) malloc(sizeof(struct node));
        n->value = value;
        n->next = NULL;
        return n;
    }
    """
    result = compile_c(source)
    proc = result.program.procedure("make_node")
    assert "call malloc" in str(proc)
    assert "malloc" in result.program.externs


def test_parse_error_is_reported():
    with pytest.raises(ParseError):
        parse_c("int f( { }")


def test_typecheck_rejects_unknown_identifier():
    with pytest.raises(TypeCheckError):
        compile_c("int f(void) { return x; }")


def test_typecheck_rejects_bad_deref():
    with pytest.raises(TypeCheckError):
        compile_c("int f(int x) { return *x; }")


def test_global_variables():
    source = """
    int counter;

    void bump(int n) {
        counter = counter + n;
    }

    int get(void) {
        return counter;
    }
    """
    result = compile_c(source)
    assert "g_counter" in result.program.globals
    assert "[g_counter]" in str(result.program.procedure("get"))


def test_array_indexing_and_pointer_arithmetic():
    source = """
    int sum(const int * values, int count) {
        int total;
        int i;
        total = 0;
        i = 0;
        while (i < count) {
            total = total + values[i];
            i = i + 1;
        }
        return total;
    }
    """
    result = compile_c(source)
    truth = result.ground_truth.function("sum")
    assert truth.param_const == [True, False]
    proc = result.program.procedure("sum")
    assert proc.size > 15
