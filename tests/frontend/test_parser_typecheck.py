"""Finer-grained tests for the mini-C lexer, parser and type checker."""

import pytest

from repro.core.ctype import IntType, PointerType, StructRef, VoidType
from repro.frontend import ParseError, TypeCheckError, parse_c, tokenize, typecheck
from repro.frontend.ast import (
    Assign,
    Binary,
    Call,
    Cast,
    FieldAccess,
    If,
    Index,
    IntLit,
    Name,
    Return,
    SizeOf,
    Unary,
    While,
)


def test_tokenizer_basics():
    tokens = tokenize("int f(void) { return x + 0x10; } // comment")
    kinds = [t.kind for t in tokens]
    assert "eof" == kinds[-1]
    values = [t.value for t in tokens if t.kind != "eof"]
    assert "0x10" in values
    assert "//" not in " ".join(values)


def test_tokenizer_reports_bad_character():
    from repro.frontend import LexError

    with pytest.raises(LexError):
        tokenize("int f() { return `; }")


def test_parse_expression_precedence():
    unit = parse_c("int f(int a, int b) { return a + b * 2; }")
    ret = unit.function("f").body[0]
    assert isinstance(ret, Return)
    assert isinstance(ret.value, Binary) and ret.value.op == "+"
    assert isinstance(ret.value.right, Binary) and ret.value.right.op == "*"


def test_parse_pointer_and_const_types():
    unit = parse_c("int f(const char * s, int ** pp) { return 0; }")
    params = unit.function("f").params
    assert isinstance(params[0].ctype, PointerType) and params[0].ctype.const
    assert params[0].is_const
    assert isinstance(params[1].ctype, PointerType)
    assert isinstance(params[1].ctype.pointee, PointerType)
    assert not params[1].is_const


def test_parse_struct_access_chain():
    unit = parse_c(
        """
        struct s { int v; };
        int f(struct s * p) { return p->v; }
        """
    )
    ret = unit.function("f").body[0]
    assert isinstance(ret.value, FieldAccess)
    assert ret.value.arrow


def test_parse_cast_vs_parenthesized_expression():
    unit = parse_c("int f(int x) { return (int) x + (x); }")
    ret = unit.function("f").body[0]
    assert isinstance(ret.value, Binary)
    assert isinstance(ret.value.left, Cast)


def test_parse_sizeof_and_null():
    unit = parse_c("unsigned f(void) { return sizeof(struct missing); }")
    ret = unit.function("f").body[0]
    assert isinstance(ret.value, SizeOf)


def test_parse_control_flow_nesting():
    unit = parse_c(
        """
        int f(int n) {
            int total;
            total = 0;
            while (n > 0) {
                if (n > 10) {
                    total = total + 2;
                } else {
                    total = total + 1;
                }
                n = n - 1;
            }
            return total;
        }
        """
    )
    body = unit.function("f").body
    assert any(isinstance(s, While) for s in body)


def test_parse_prototype_and_globals():
    unit = parse_c(
        """
        extern int helper(int x);
        int counter;
        int f(void) { return helper(counter); }
        """
    )
    assert unit.function("helper").body is None
    assert unit.globals[0].name == "counter"


def test_parse_error_on_missing_semicolon():
    with pytest.raises(ParseError):
        parse_c("int f(void) { return 1 }")


# -- type checking ------------------------------------------------------------------------


def test_typecheck_annotates_expressions():
    unit = parse_c(
        """
        struct s { int v; struct s * next; };
        int f(struct s * p) { return p->next->v; }
        """
    )
    checked = typecheck(unit)
    ret = unit.function("f").body[0]
    assert ret.value.ctype == IntType(32, True)
    assert isinstance(ret.value.obj.ctype, PointerType)


def test_typecheck_pointer_arithmetic_type():
    unit = parse_c("int f(int * p, int i) { return *(p + i); }")
    typecheck(unit)
    ret = unit.function("f").body[0]
    assert ret.value.ctype == IntType(32, True)


def test_typecheck_rejects_arity_mismatch():
    with pytest.raises(TypeCheckError):
        typecheck(parse_c("int f(void) { return close(1, 2); }"))


def test_typecheck_rejects_unknown_function():
    with pytest.raises(TypeCheckError):
        typecheck(parse_c("int f(void) { return launch_missiles(); }"))


def test_typecheck_rejects_unknown_struct_field():
    source = """
    struct s { int v; };
    int f(struct s * p) { return p->missing; }
    """
    with pytest.raises((TypeCheckError, KeyError)):
        typecheck(parse_c(source))


def test_typecheck_rejects_struct_by_value_params():
    source = """
    struct s { int v; };
    int f(struct s value) { return 0; }
    """
    with pytest.raises(TypeCheckError):
        typecheck(parse_c(source))


def test_typecheck_scopes_block_locals():
    source = """
    int f(int flag) {
        if (flag) {
            int inner;
            inner = 1;
        }
        return inner;
    }
    """
    with pytest.raises(TypeCheckError):
        typecheck(parse_c(source))


def test_typecheck_known_externs_have_signatures():
    checked = typecheck(parse_c("int f(void) { return close(3); }"))
    assert "close" in checked.signatures
    assert checked.signatures["close"].is_extern
