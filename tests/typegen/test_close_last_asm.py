"""Full pipeline test on the Figure 2 example, starting from assembly text.

This is the flagship reproduction check: disassembly in, recursive
linked-list C type out, with the semantic tags of Figure 2 attached.
"""

import pytest

from repro import analyze_program
from repro.core import (
    DerivedTypeVariable,
    PointerType,
    StructRef,
    StructType,
    TypedefType,
    IntType,
    in_label,
    out_label,
)

CLOSE_LAST_ASM = """
.extern close

close_last:
    mov edx, [esp+4]
    jmp .loc_8048402
.loc_8048400:
    mov edx, eax
.loc_8048402:
    mov eax, [edx]
    test eax, eax
    jnz .loc_8048400
    mov eax, [edx+4]
    push eax
    call close
    add esp, 4
    ret
"""


@pytest.fixture(scope="module")
def types():
    return analyze_program(CLOSE_LAST_ASM)


def test_one_parameter_one_return(types):
    info = types["close_last"]
    assert len(info.function_type.params) == 1
    assert info.param_locations == ["stack0"]


def test_parameter_is_const_pointer_to_recursive_struct(types):
    param = types["close_last"].param_type(0)
    assert isinstance(param, PointerType)
    assert param.const
    pointee = param.pointee
    assert isinstance(pointee, (StructType, StructRef))
    structs = types.struct_definitions()
    if isinstance(pointee, StructRef):
        pointee = structs[pointee.name]
    offsets = sorted(f.offset for f in pointee.fields)
    assert offsets == [0, 4]
    next_field = pointee.field_at(0).ctype
    assert isinstance(next_field, PointerType)
    assert isinstance(next_field.pointee, (StructRef, StructType))


def test_handle_field_is_file_descriptor(types):
    param = types["close_last"].param_type(0)
    structs = types.struct_definitions()
    pointee = param.pointee
    if isinstance(pointee, StructRef):
        pointee = structs[pointee.name]
    handle = pointee.field_at(4).ctype
    assert isinstance(handle, (TypedefType, IntType))
    if isinstance(handle, TypedefType):
        assert handle.name == "#FileDescriptor"


def test_return_type_is_int_like(types):
    ret = types["close_last"].return_type
    assert isinstance(ret, (IntType, TypedefType))


def test_scheme_has_recursive_constraint(types):
    scheme = types.scheme("close_last")
    in_var = DerivedTypeVariable("close_last", (in_label("stack0"),))
    out_var = DerivedTypeVariable("close_last", (out_label("eax"),))
    mentioned = {str(c.left.base_var) for c in scheme.constraints} | {
        str(c.right.base_var) for c in scheme.constraints
    }
    assert "close_last" in mentioned
    assert scheme.quantified, "the linked-list structure requires existential variables"
    text = str(scheme)
    # The recursive structure of the list must appear: a load capability and
    # the two struct fields, expressed over the existential variables
    # (Figure 2 inlines them; this presentation names the intermediate node).
    assert ".load" in text
    assert "sigma32@0" in text
    assert "sigma32@4" in text
    assert "#FileDescriptor" in text


def test_signature_rendering(types):
    signature = types.signature("close_last")
    assert signature.startswith(("int", "#"))
    assert "close_last(" in signature
    assert "const" in signature
