"""Unit tests for constraint generation (the Appendix A abstract interpreter) and extern schemes."""

import pytest

from repro.core import parse_dtv
from repro.ir import parse_program
from repro.typegen import (
    ExternSignature,
    STANDARD_EXTERNS,
    extern_schemes,
    generate_program_constraints,
    standard_externs,
)


def _constraints_for(asm, name):
    program = parse_program(asm)
    return generate_program_constraints(program)[name]


def test_value_copy_generates_subtype_constraint():
    proc = _constraints_for(
        """
        f:
            mov eax, [esp+4]
            mov ebx, eax
            ret
        """,
        "f",
    )
    texts = {str(c) for c in proc.constraints}
    assert any("f.in_stack0 <=" in t for t in texts)
    assert any("ebx" in t for t in texts)


def test_load_generates_dot_load_sigma():
    proc = _constraints_for(
        """
        f:
            mov ecx, [esp+4]
            mov eax, [ecx+8]
            ret
        """,
        "f",
    )
    texts = " ".join(str(c) for c in proc.constraints)
    assert ".load.sigma32@8" in texts


def test_store_generates_dot_store_sigma():
    proc = _constraints_for(
        """
        f:
            mov ecx, [esp+4]
            mov eax, [esp+8]
            mov [ecx+4], eax
            ret
        """,
        "f",
    )
    texts = " ".join(str(c) for c in proc.constraints)
    assert ".store.sigma32@4" in texts


def test_constant_offset_tracking():
    """add reg, imm is tracked as a pointer offset, not a value copy (section A.2)."""
    proc = _constraints_for(
        """
        f:
            mov ecx, [esp+4]
            add ecx, 12
            mov eax, [ecx]
            ret
        """,
        "f",
    )
    texts = " ".join(str(c) for c in proc.constraints)
    assert ".load.sigma32@12" in texts


def test_xor_zero_is_not_a_typed_value():
    proc = _constraints_for(
        """
        f:
            xor eax, eax
            push eax
            call malloc
            add esp, 4
            ret
        """,
        "f",
    )
    # the pushed zero flows to malloc's size parameter but carries no type of
    # its own: no constraint should relate the xor'd eax to anything else.
    texts = [str(c) for c in proc.constraints]
    assert not any("eax@0" in t and "<=" in t and "in_stack0" in t for t in texts)


def test_callsites_are_tagged_per_instruction():
    proc = _constraints_for(
        """
        f:
            push 4
            call malloc
            add esp, 4
            push 8
            call malloc
            add esp, 4
            ret
        """,
        "f",
    )
    bases = {c.callee for c in proc.callsites}
    assert bases == {"malloc"}
    assert len({c.base for c in proc.callsites}) == 2, "each callsite gets its own instance"


def test_register_parameter_actuals():
    program = parse_program(
        """
        callee:
            mov eax, ecx
            ret

        caller:
            mov ecx, [esp+4]
            call callee
            ret
        """
    )
    inputs = generate_program_constraints(program)
    assert str(inputs["callee"].formal_ins[0]) == "callee.in_ecx"
    texts = " ".join(str(c) for c in inputs["caller"].constraints)
    assert ".in_ecx" in texts


def test_return_value_constraint():
    proc = _constraints_for(
        """
        f:
            mov eax, [esp+4]
            ret
        """,
        "f",
    )
    texts = {str(c) for c in proc.constraints}
    assert any("<= f.out_eax" in t for t in texts)


def test_additive_constraint_for_register_addition():
    proc = _constraints_for(
        """
        f:
            mov eax, [esp+4]
            mov ebx, [esp+8]
            add eax, ebx
            ret
        """,
        "f",
    )
    assert len(proc.constraints.additive) == 1


def test_globals_get_shared_variables():
    program = parse_program(
        """
        .global_var counter 4

        bump:
            mov eax, [g_counter]
            add eax, 1
            mov [g_counter], eax
            ret
        """
    )
    proc = generate_program_constraints(program)["bump"]
    texts = " ".join(str(c) for c in proc.constraints)
    assert "g_counter" in texts


# -- extern schemes ---------------------------------------------------------------------------


def test_standard_externs_cover_figure2_functions():
    externs = standard_externs()
    for name in ("malloc", "free", "memcpy", "close", "open", "fopen", "fclose"):
        assert name in externs


def test_extern_schemes_parse_and_name_formals():
    schemes = extern_schemes()
    close = schemes["close"]
    assert str(close.formal_ins[0]) == "close.in_stack0"
    assert str(close.formal_outs[0]) == "close.out_eax"
    assert len(close.constraints) >= 3


def test_malloc_is_polymorphic():
    """malloc's scheme must not constrain its return type (section 2.2)."""
    scheme = extern_schemes()["malloc"]
    for constraint in scheme.constraints:
        assert "out_eax" not in str(constraint)


def test_memcpy_relates_source_and_destination():
    scheme = extern_schemes()["memcpy"]
    texts = {str(c) for c in scheme.constraints}
    assert any(".load" in t and ".store" in t for t in texts)


def test_extern_signature_scheme_instantiation():
    signature = ExternSignature(
        name="mygetter", stack_params=1, constraints=("mygetter.in_stack0.load.sigma32@0 <= int",)
    )
    scheme = signature.scheme()
    instantiated = scheme.instantiate_as("mygetter$7")
    assert any("mygetter$7" in str(c) for c in instantiated)
