"""Tests for the assembly parser and the basic IR data structures."""

import pytest

from repro.ir import (
    AsmSyntaxError,
    BinaryOp,
    Call,
    Compare,
    Imm,
    Jcc,
    Jmp,
    Mem,
    Mov,
    Push,
    Reg,
    Ret,
    parse_instruction,
    parse_operand,
    parse_program,
)


def test_parse_registers_and_immediates():
    assert parse_operand("eax") == Reg("eax")
    assert parse_operand("42") == Imm(42)
    assert parse_operand("-8") == Imm(-8)
    assert parse_operand("0x10") == Imm(16)


def test_parse_memory_operands():
    assert parse_operand("[esp+4]") == Mem("esp", 4, 4)
    assert parse_operand("[ebp-8]") == Mem("ebp", -8, 4)
    assert parse_operand("[edx]") == Mem("edx", 0, 4)
    assert parse_operand("byte [eax+3]") == Mem("eax", 3, 1)
    assert parse_operand("[counter]") == Mem("counter", 0, 4)
    assert parse_operand("[eax+ebx]") == Mem("eax", 0, 4, index="ebx")


def test_parse_instructions():
    assert parse_instruction("mov eax, [esp+4]") == Mov(Reg("eax"), Mem("esp", 4, 4))
    assert parse_instruction("add esp, 8") == BinaryOp("add", Reg("esp"), Imm(8))
    assert parse_instruction("push eax") == Push(Reg("eax"))
    assert parse_instruction("call close") == Call("close")
    assert parse_instruction("jnz .loop") == Jcc("nz", ".loop")
    assert parse_instruction("jmp .exit") == Jmp(".exit")
    assert parse_instruction("ret") == Ret()
    assert parse_instruction("test eax, eax") == Compare("test", Reg("eax"), Reg("eax"))


def test_parse_program_structure():
    program = parse_program(
        """
        .extern malloc
        .global_var counter 4

        main:
            push 16
            call malloc
            add esp, 4
            mov [counter], eax
            ret

        helper:
            mov eax, [counter]
            ret
        """
    )
    assert set(program.procedures) == {"main", "helper"}
    assert program.externs == {"malloc"}
    assert program.globals == {"counter": 4}
    assert program.procedure("main").direct_callees() == ["malloc"]
    assert program.instruction_count == 7


def test_local_labels_resolve():
    program = parse_program(
        """
        f:
            jmp .end
        .end:
            ret
        """
    )
    proc = program.procedure("f")
    assert proc.label_target(".end") == 1


def test_parse_error_reports_line():
    with pytest.raises(AsmSyntaxError):
        parse_program("f:\n    bogus eax, ebx\n")


def test_instruction_outside_procedure_rejected():
    with pytest.raises(AsmSyntaxError):
        parse_program("    mov eax, ebx\n")


def test_comments_and_blank_lines_ignored():
    program = parse_program(
        """
        ; a comment
        f:
            mov eax, 1   ; inline comment
            # another comment style
            ret
        """
    )
    assert program.procedure("f").size == 2


def test_roundtrip_str_reparses():
    text = """
    f:
        push ebp
        mov ebp, esp
        mov eax, [ebp+8]
        leave
        ret
    """
    program = parse_program(text)
    reparsed = parse_program(str(program))
    assert reparsed.procedure("f").size == program.procedure("f").size
