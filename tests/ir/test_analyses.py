"""Tests for the IR analyses: CFG, stack tracking, reaching definitions, interfaces."""

from repro.ir import (
    ENTRY,
    CallGraph,
    Mem,
    analyze_reaching_definitions,
    analyze_stack,
    build_cfg,
    cfg_node_count,
    discover_interface,
    frame_offset,
    parse_program,
)


EXAMPLE = """
.extern malloc

leaf:
    mov eax, [esp+4]
    add eax, ecx
    ret

caller:
    push ebp
    mov ebp, esp
    sub esp, 8
    mov eax, [ebp+8]
    mov [ebp-4], eax
    push 12
    call malloc
    add esp, 4
    mov [ebp-8], eax
    mov eax, [ebp-8]
    leave
    ret

looper:
    mov ecx, [esp+4]
.head:
    test ecx, ecx
    jz .done
    mov ecx, [ecx]
    jmp .head
.done:
    mov eax, ecx
    ret
"""


def _program():
    return parse_program(EXAMPLE)


def test_stack_analysis_tracks_ebp_frame():
    program = _program()
    proc = program.procedure("caller")
    states = analyze_stack(proc)
    # After push ebp; mov ebp, esp; sub esp, 8 the state before "mov eax,[ebp+8]"
    idx = 3
    assert states[idx].esp == -12
    assert states[idx].ebp == -4
    # [ebp+8] therefore addresses frame offset 4: the first argument.
    assert frame_offset(Mem("ebp", 8), states[idx]) == 4
    assert frame_offset(Mem("ebp", -4), states[idx]) == -8


def test_stack_analysis_esp_restored_before_ret():
    program = _program()
    proc = program.procedure("caller")
    states = analyze_stack(proc)
    ret_index = len(proc.instructions) - 1
    assert states[ret_index].esp == 0


def test_reaching_definitions_for_loop_variable():
    program = _program()
    proc = program.procedure("looper")
    reaching = analyze_reaching_definitions(proc)
    # At "mov eax, ecx" (the .done block) ecx may come from the initial load or
    # from the loop body load.
    done_index = next(
        i for i, ins in enumerate(proc.instructions) if str(ins) == "mov eax, ecx"
    )
    defs = reaching.reaching(done_index, "ecx")
    assert len(defs) == 2
    assert ENTRY not in defs


def test_interface_discovery_stack_and_register_args():
    program = _program()
    leaf = discover_interface(program.procedure("leaf"))
    assert leaf.stack_args == (4,)
    assert leaf.register_args == ("ecx",)
    assert leaf.has_return
    assert leaf.input_locations == ["stack0", "ecx"]

    caller = discover_interface(program.procedure("caller"))
    assert caller.stack_args == (4,)
    assert caller.register_args == ()
    assert caller.has_return


def test_interface_callee_saved_push_is_not_a_parameter():
    program = parse_program(
        """
        f:
            push ebx
            mov ebx, [esp+8]
            mov eax, ebx
            pop ebx
            ret
        """
    )
    interface = discover_interface(program.procedure("f"))
    assert interface.register_args == ()
    assert interface.stack_args == (4,)


def test_cfg_block_structure():
    program = _program()
    proc = program.procedure("looper")
    cfg = build_cfg(proc)
    assert cfg_node_count(proc) == len(cfg.blocks)
    assert len(cfg.blocks) >= 3


def test_callgraph_sccs():
    program = parse_program(
        """
        a:
            call b
            ret
        b:
            call a
            ret
        c:
            call a
            ret
        """
    )
    graph = CallGraph.from_program(program)
    sccs = graph.sccs_bottom_up()
    assert ["c"] == sccs[-1] or ["c"] in sccs  # c depends on the a/b component
    ab = next(s for s in sccs if set(s) == {"a", "b"})
    assert set(ab) == {"a", "b"}
    assert graph.callers("a") == {"b", "c"}
