"""CallGraph: caller queries, SCC orders, invalidation cones, wave levelling."""

from repro.ir.asmparser import parse_program
from repro.ir.callgraph import CallGraph
from repro.typegen.abstract_interp import generate_program_constraints


def _chain_program():
    # main -> helper -> leaf, plus mutually recursive pair (ping/pong) called
    # by main, plus an isolated procedure.
    return parse_program(
        """
        leaf:
            mov eax, [esp+4]
            ret
        helper:
            mov eax, [esp+4]
            push eax
            call leaf
            add esp, 4
            ret
        ping:
            mov eax, [esp+4]
            push eax
            call pong
            add esp, 4
            ret
        pong:
            mov eax, [esp+4]
            push eax
            call ping
            add esp, 4
            ret
        main:
            mov eax, [esp+4]
            push eax
            call helper
            add esp, 4
            push eax
            call ping
            add esp, 4
            ret
        isolated:
            mov eax, 1
            ret
        """
    )


def test_callers_inverts_callees():
    graph = CallGraph.from_program(_chain_program())
    assert graph.callees("main") == {"helper", "ping"}
    assert graph.callers("leaf") == {"helper"}
    assert graph.callers("helper") == {"main"}
    assert graph.callers("ping") == {"pong", "main"}
    assert graph.callers("main") == set()
    assert graph.callers("isolated") == set()
    # Every callee edge has a matching caller edge and vice versa.
    for name in graph.edges:
        for callee in graph.callees(name):
            assert name in graph.callers(callee)


def test_scc_orders_are_reverses():
    graph = CallGraph.from_program(_chain_program())
    bottom_up = graph.sccs_bottom_up()
    top_down = graph.sccs_top_down()
    assert top_down == list(reversed(bottom_up))

    position = {}
    for index, scc in enumerate(bottom_up):
        for name in scc:
            position[name] = index
    # Bottom-up: every callee's SCC comes no later than its caller's.
    for caller, callees in graph.edges.items():
        for callee in callees:
            if position[callee] != position[caller]:
                assert position[callee] < position[caller]
    # The recursive pair is one component.
    recursive = next(scc for scc in bottom_up if set(scc) == {"ping", "pong"})
    assert len(recursive) == 2


def test_transitive_callers_cone():
    graph = CallGraph.from_program(_chain_program())
    assert graph.transitive_callers({"leaf"}) == {"leaf", "helper", "main"}
    assert graph.transitive_callers({"ping"}) == {"ping", "pong", "main"}
    assert graph.transitive_callers({"main"}) == {"main"}
    assert graph.transitive_callers({"isolated"}) == {"isolated"}
    assert graph.transitive_callers(set()) == set()


def test_scc_of_maps_members_to_components():
    graph = CallGraph.from_program(_chain_program())
    scc_of = graph.scc_of()
    assert scc_of["ping"] == scc_of["pong"]
    assert set(scc_of["ping"]) == {"ping", "pong"}
    assert scc_of["leaf"] == ("leaf",)


def test_scc_waves_level_the_condensation():
    graph = CallGraph.from_program(_chain_program())
    waves = graph.scc_waves()
    level = {}
    for depth, wave in enumerate(waves):
        for scc in wave:
            for name in scc:
                level[name] = depth
    # leaf, the ping/pong cycle and isolated have no defined callees: wave 0.
    assert level["leaf"] == 0
    assert level["ping"] == level["pong"] == 0
    assert level["isolated"] == 0
    assert level["helper"] == 1
    assert level["main"] == 2
    # Each wave only calls into strictly earlier waves.
    for caller, callees in graph.edges.items():
        for callee in callees:
            if level[callee] == level[caller]:
                # Only within one SCC (the recursive pair).
                assert {caller, callee} <= {"ping", "pong"}
            else:
                assert level[callee] < level[caller]
    # All procedures appear exactly once across the waves.
    flat = [name for wave in waves for scc in wave for name in scc]
    assert sorted(flat) == sorted(graph.edges)


def test_callgraph_from_typing_inputs_matches_program_graph():
    program = _chain_program()
    inputs = generate_program_constraints(program)
    from_inputs = CallGraph.from_typing_inputs(inputs)
    from_program = CallGraph.from_program(program)
    assert from_inputs.edges == from_program.edges
