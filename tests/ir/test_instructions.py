"""Unit tests for the instruction model: operands, defs/uses, idiom detection."""

import pytest

from repro.ir import (
    BinaryOp,
    Call,
    Compare,
    Imm,
    Jcc,
    Jmp,
    Leave,
    Mem,
    Mov,
    Pop,
    Push,
    Reg,
    Ret,
    is_zeroing_idiom,
)


def test_register_validation():
    with pytest.raises(ValueError):
        Reg("rax")  # 64-bit registers are not part of the 32-bit substrate
    assert Reg("eax").name == "eax"


def test_mem_classification():
    assert Mem("esp", 4).is_register_based
    assert not Mem("esp", 4).is_global
    assert Mem("counter", 0).is_global
    assert not Mem("counter", 0).is_register_based


def test_mov_defs_and_uses():
    load = Mov(Reg("eax"), Mem("edx", 4))
    assert load.register_defs() == {"eax"}
    assert load.register_uses() == {"edx"}
    store = Mov(Mem("edx", 4), Reg("eax"))
    assert store.register_defs() == set()
    assert store.register_uses() == {"edx", "eax"}


def test_binary_op_defs_and_uses():
    add = BinaryOp("add", Reg("eax"), Reg("ebx"))
    assert add.register_defs() == {"eax"}
    assert add.register_uses() == {"eax", "ebx"}


def test_xor_zeroing_has_no_semantic_use():
    zero = BinaryOp("xor", Reg("eax"), Reg("eax"))
    assert zero.register_uses() == set()
    assert is_zeroing_idiom(zero)
    assert is_zeroing_idiom(BinaryOp("sub", Reg("ecx"), Reg("ecx")))
    assert not is_zeroing_idiom(BinaryOp("xor", Reg("eax"), Reg("ebx")))
    assert not is_zeroing_idiom(Mov(Reg("eax"), Imm(0)))


def test_push_pop_touch_esp():
    assert "esp" in Push(Reg("eax")).register_defs()
    assert "esp" in Pop(Reg("ebx")).register_defs()
    assert Pop(Reg("ebx")).register_defs() == {"ebx", "esp"}


def test_call_clobbers_caller_saved():
    call = Call("malloc")
    assert call.register_defs() == {"eax", "ecx", "edx"}
    indirect = Call(Reg("eax"))
    assert "eax" in indirect.register_uses()


def test_terminators():
    assert Ret().is_terminator()
    assert Jmp(".x").is_terminator()
    assert not Jcc("z", ".x").is_terminator()
    assert not Mov(Reg("eax"), Imm(1)).is_terminator()


def test_string_rendering():
    assert str(Mov(Reg("eax"), Mem("esp", 4))) == "mov eax, [esp+4]"
    assert str(Mov(Reg("eax"), Mem("ebp", -8))) == "mov eax, [ebp-8]"
    assert str(Push(Imm(3))) == "push 3"
    assert str(Compare("test", Reg("eax"), Reg("eax"))) == "test eax, eax"
    assert str(Leave()) == "leave"
    assert str(Mem("eax", 3, 1)) == "byte [eax+3]"


def test_compare_uses_both_operands():
    cmp = Compare("cmp", Reg("eax"), Mem("ebp", 8))
    assert cmp.register_uses() == {"eax", "ebp"}
    assert cmp.register_defs() == set()
