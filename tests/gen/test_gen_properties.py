"""Property tests for the ground-truth program generator.

The generator's contract is determinism and well-typedness: byte-identical
output for a ``(seed, profile)`` pair across calls and across processes
(regardless of ``PYTHONHASHSEED``), and every emitted program round-trips
through the real frontend -- parser, type checker, code generator -- with
zero errors.
"""

import hashlib
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.frontend import compile_c, parse_c, typecheck
from repro.gen import (
    GenProfile,
    generate_corpus,
    generate_edit,
    generate_program,
    named_profiles,
)
from repro.service.store import program_fingerprints


def profiles():
    return st.one_of(
        st.sampled_from(list(named_profiles().values())),
        st.builds(
            GenProfile,
            n_structs=st.integers(min_value=1, max_value=4),
            n_functions=st.integers(min_value=3, max_value=14),
            recursive_struct_ratio=st.floats(min_value=0.0, max_value=1.0),
            tree_struct_ratio=st.floats(min_value=0.0, max_value=1.0),
            multi_level_pointer_weight=st.floats(min_value=0.0, max_value=1.0),
            function_pointer_weight=st.floats(min_value=0.0, max_value=1.0),
            const_ratio=st.floats(min_value=0.0, max_value=1.0),
            call_chain_depth=st.integers(min_value=0, max_value=5),
            mutual_recursion_pairs=st.integers(min_value=0, max_value=2),
            dead_functions=st.integers(min_value=0, max_value=2),
            polymorphic_weight=st.floats(min_value=0.0, max_value=1.0),
            drivers=st.integers(min_value=0, max_value=2),
        ),
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**6), profiles())
def test_generation_is_deterministic_across_calls(seed, profile):
    first = generate_program(seed, profile)
    second = generate_program(seed, profile)
    assert first.source == second.source
    assert first.functions == second.functions
    assert first.dead_functions == second.dead_functions


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**6), profiles())
def test_generated_source_round_trips_with_zero_type_errors(seed, profile):
    program = generate_program(seed, profile)
    unit = parse_c(program.source)          # no ParseError
    checked = typecheck(unit)               # no TypeCheckError
    assert {f.name for f in unit.functions if f.is_definition} == set(program.functions)
    assert checked.signatures


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_generated_source_compiles_to_machine_code(seed):
    program = generate_program(seed, GenProfile.smoke())
    compilation = program.compile()
    assert compilation.program.instruction_count > 20
    assert set(compilation.ground_truth.functions) == set(program.functions)


def test_generation_is_deterministic_across_processes():
    """Byte-identical output no matter the interpreter's hash randomization."""
    seeds = [0, 7, 20160613]
    local = {
        seed: hashlib.sha256(
            generate_program(seed, GenProfile.smoke()).source.encode()
        ).hexdigest()
        for seed in seeds
    }
    script = (
        "import hashlib, sys\n"
        "from repro.gen import GenProfile, generate_program\n"
        "for seed in (0, 7, 20160613):\n"
        "    digest = hashlib.sha256(\n"
        "        generate_program(seed, GenProfile.smoke()).source.encode()\n"
        "    ).hexdigest()\n"
        "    print(seed, digest)\n"
    )
    for hashseed in ("0", "424242"):
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={
                "PYTHONHASHSEED": hashseed,
                "PYTHONPATH": os.path.join(REPO_ROOT, "src"),
                "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
            },
            cwd=REPO_ROOT,
        )
        for line in out.stdout.strip().splitlines():
            seed_text, digest = line.split()
            assert local[int(seed_text)] == digest, (
                f"seed {seed_text} differs under PYTHONHASHSEED={hashseed}"
            )


def test_corpus_members_regenerate_independently():
    corpus = generate_corpus(4, seed=99, profile=GenProfile.smoke())
    for member in corpus:
        again = generate_program(member.seed, GenProfile.smoke(), name=member.name)
        assert again.source == member.source


def test_answer_key_matches_full_compilation_ground_truth():
    """The generator's answer key (parse+typecheck, no codegen) is exactly
    what a full compile records before erasing types."""
    program = generate_program(5, GenProfile.default())
    compiled_truth = compile_c(program.source).ground_truth
    assert set(program.ground_truth.functions) == set(compiled_truth.functions)
    for name, entry in program.ground_truth.functions.items():
        other = compiled_truth.functions[name]
        assert [(loc, str(t)) for loc, t in entry.params] == [
            (loc, str(t)) for loc, t in other.params
        ]
        assert entry.param_const == other.param_const
        assert str(entry.return_type) == str(other.return_type)
    assert {n: str(s) for n, s in program.ground_truth.structs.items()} == {
        n: str(s) for n, s in compiled_truth.structs.items()
    }


def test_edit_changes_exactly_the_chosen_function():
    program = generate_program(11, GenProfile.smoke())
    edit = generate_edit(program, edit_seed=3)
    assert edit.source != program.source
    before = program_fingerprints(program.compile().program)
    after = program_fingerprints(compile_c(edit.source).program)
    changed = {name for name in before if before[name] != after.get(name)}
    assert changed == {edit.function}


def test_feature_floors_appear_with_full_weights():
    """Dialling a feature weight to 1.0 makes the feature appear."""
    profile = GenProfile(
        n_structs=4,
        n_functions=16,
        recursive_struct_ratio=1.0,
        tree_struct_ratio=0.5,
        multi_level_pointer_weight=1.0,
        function_pointer_weight=1.0,
        const_ratio=1.0,
        call_chain_depth=3,
        mutual_recursion_pairs=1,
        dead_functions=2,
        polymorphic_weight=1.0,
        drivers=1,
    )
    found_const = found_tree = False
    for seed in range(6):
        program = generate_program(seed, profile)
        source = program.source
        assert "**" in source  # multi-level pointers (weight 1.0 guarantees them)
        assert "_mr0_even" in source and "_mr0_odd" in source
        assert "_chain2" in source
        assert len(program.dead_functions) == 2
        found_const = found_const or "const struct" in source
        found_tree = found_tree or "->left" in source
    assert found_const, "no const pointer parameter generated in 6 seeds"
    assert found_tree, "no binary tree struct generated in 6 seeds"


def test_dead_functions_are_never_called():
    for seed in range(5):
        program = generate_program(seed, GenProfile.default())
        compiled = program.compile().program
        for dead in program.dead_functions:
            callers = [
                name
                for name, proc in compiled.procedures.items()
                if dead in proc.direct_callees()
            ]
            assert not callers, f"dead function {dead} called by {callers}"
