"""Property tests for toggle-derived program families (repro.gen.family).

The family contract: member 0 is the base program; every variant differs
from the base by *exactly* its declared toggles (re-applying them to the
base reproduces the variant byte-for-byte); every member carries its own
well-formed answer key derived through the real parse+typecheck path; and
the whole family is byte-identical across calls, processes and
``PYTHONHASHSEED`` values.  The family oracle mode on top of this proves
cross-member summary-store reuse and incremental-session equivalence.
"""

import hashlib
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.frontend import parse_c, typecheck
from repro.gen import GenProfile, family_answer_key_json, run_oracle
from repro.gen.family import (
    apply_toggles,
    enumerate_toggles,
    generate_families,
    generate_family,
)

SMOKE = GenProfile.smoke()


@settings(max_examples=12, deadline=None)
@given(
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=2, max_value=5),
)
def test_family_generation_is_deterministic_across_calls(seed, members):
    first = generate_family(seed, SMOKE, members=members)
    second = generate_family(seed, SMOKE, members=members)
    assert [m.source for m in first.members] == [m.source for m in second.members]
    assert [m.toggles for m in first.members] == [m.toggles for m in second.members]


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_members_differ_from_base_by_exactly_the_declared_toggles(seed):
    family = generate_family(seed, SMOKE, members=4)
    base = family.base
    assert family.members[0].toggles == ()
    for member in family.members[1:]:
        assert member.toggles, "variant declares no toggles"
        assert member.source != base.source
        # Replaying the declared toggles against the base reproduces the
        # variant byte-for-byte: the toggles are the *whole* difference.
        replayed = apply_toggles(base, member.toggles, name=member.name)
        assert replayed.source == member.source


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_family_answer_keys_are_well_formed(seed):
    family = generate_family(seed, SMOKE, members=3)
    key = family.answer_key()
    assert set(key) == {m.name for m in family.members}
    for member in family.members:
        truth = key[member.name]
        # the key covers exactly the member's functions and typechecks again.
        assert set(truth.functions) == set(member.program.functions)
        checked = typecheck(parse_c(member.source))
        assert checked.signatures
    doc = family_answer_key_json(family)
    assert [m["toggles"] for m in doc["members"]][0] == []
    assert all(m["functions"] for m in doc["members"])


def test_toggle_pool_is_nonempty_and_source_ordered():
    program = generate_family(123, SMOKE, members=1).base
    pool = enumerate_toggles(program)
    assert pool, "no applicable toggles for a smoke-profile program"
    assert pool == enumerate_toggles(program)  # stable ordering
    kinds = {toggle.kind for toggle in pool}
    assert "add-field" in kinds  # always available: every program has a struct


def test_families_regenerate_independently():
    families = generate_families(3, seed=77, profile=SMOKE, members=3)
    for family in families:
        again = generate_family(
            family.seed, SMOKE, members=3, name=family.name
        )
        assert [m.source for m in again.members] == [m.source for m in family.members]


def test_family_generation_deterministic_across_processes():
    """Byte-identical families regardless of hash randomization."""
    local = {}
    for seed in (0, 42):
        family = generate_family(seed, SMOKE, members=3)
        joined = "\x00".join(m.source for m in family.members)
        local[seed] = hashlib.sha256(joined.encode()).hexdigest()
    script = (
        "import hashlib\n"
        "from repro.gen import GenProfile\n"
        "from repro.gen.family import generate_family\n"
        "for seed in (0, 42):\n"
        "    family = generate_family(seed, GenProfile.smoke(), members=3)\n"
        "    joined = '\\x00'.join(m.source for m in family.members)\n"
        "    print(seed, hashlib.sha256(joined.encode()).hexdigest())\n"
    )
    for hashseed in ("0", "271828"):
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={
                "PYTHONHASHSEED": hashseed,
                "PYTHONPATH": os.path.join(REPO_ROOT, "src"),
                "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
            },
            cwd=REPO_ROOT,
        )
        for line in out.stdout.strip().splitlines():
            seed_text, digest = line.split()
            assert local[int(seed_text)] == digest, (
                f"family seed {seed_text} differs under PYTHONHASHSEED={hashseed}"
            )


def test_family_oracle_mode_proves_reuse_and_session_equivalence():
    """A small live run of the family sweep: zero mismatches, and the
    family-specific checks (store reuse, session equivalence) actually ran."""
    report = run_oracle(
        count=0,
        seed=20160613,
        profile=SMOKE,
        profile_name="smoke",
        backends=("serial",),
        derives_samples=0,
        families=2,
        family_members=3,
    )
    assert report.ok, report.summary()
    assert report.families == 2
    assert report.checks.get("family:store-reuse") == 6
    assert report.checks.get("family:session") == 6
    assert "--families 2 --members 3" in report.summary()


def test_family_suite_workload_clusters_members():
    from repro.eval import family_suite

    workloads = family_suite(2, profile=SMOKE, members=3)
    assert len(workloads) == 6
    clusters = {w.cluster for w in workloads}
    assert len(clusters) == 2
    for workload in workloads:
        assert workload.ground_truth.functions
        assert workload.program.instruction_count > 0


def test_single_member_family_is_just_the_base():
    family = generate_family(9, SMOKE, members=1)
    assert len(family.members) == 1
    assert family.members[0].toggles == ()
    with pytest.raises(ValueError):
        generate_family(9, SMOKE, members=0)
