"""Property tests for the PR-9 feature axes: unions/overlapping views,
global variables, the varargs-style idiom, and indirect-call dispatch tables.

Each axis must (a) appear when its weight is dialled to 1.0, (b) survive the
full frontend round trip with zero type errors, (c) be derivable in the
answer key through the existing parse+typecheck path, and (d) keep the
generator's byte-identical determinism contract across processes and
``PYTHONHASHSEED`` values.
"""

import hashlib
import os
import subprocess
import sys

from hypothesis import given, settings, strategies as st

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.frontend import compile_c, parse_c, typecheck
from repro.gen import GenProfile, generate_program

#: every new axis forced on, small enough for fast sweeps.
FULL_AXES = GenProfile(
    n_structs=2,
    n_functions=6,
    union_weight=1.0,
    n_globals=2,
    varargs_weight=1.0,
    dispatch_weight=1.0,
)


def test_new_axes_appear_with_full_weights():
    for seed in range(5):
        source = generate_program(seed, FULL_AXES).source
        # union-style overlapping views: two structs sharing an int tag
        # prefix plus a reader that casts one view to the other.
        assert "_u0a" in source and "_u0b" in source
        assert "(struct" in source  # the view cast
        # global variables, declared at the top level and threaded through
        # accessors (never via &global -- codegen does not support it).
        assert "_g0;" in source and "_g1;" in source
        # varargs idiom: (count, slots) walker + printf over-application.
        assert "_vsum0(int count, int * slots)" in source
        assert "printf(fmt" in source
        # dispatch table: void* handler slots, select, signal registration.
        assert "_ops0" in source and "void * on_read;" in source
        assert "select_" in source and "signal(" in source


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_new_axes_round_trip_with_zero_type_errors(seed):
    program = generate_program(seed, FULL_AXES)
    checked = typecheck(parse_c(program.source))  # no ParseError/TypeCheckError
    assert checked.signatures
    compilation = program.compile()  # no CodegenError either
    assert compilation.program.instruction_count > 20


def test_new_axes_are_derivable_in_the_answer_key():
    program = generate_program(3, FULL_AXES)
    truth = program.ground_truth
    compiled = compile_c(program.source).ground_truth
    # globals land in the answer key under their g_ names, matching codegen.
    assert any(name.endswith("_g0") for name in truth.globals)
    assert {n: str(t) for n, t in truth.globals.items()} == {
        n: str(t) for n, t in compiled.globals.items()
    }
    # both union views are distinct struct types sharing the tag prefix.
    views = [n for n in truth.structs if "_u0" in n]
    assert len(views) == 2
    for view in views:
        assert str(truth.structs[view]).startswith("struct")
    # the dispatch table struct and its void* slots are in the key too.
    ops = [n for n in truth.structs if n.endswith("_ops0")]
    assert ops and "on_read" in str(truth.structs[ops[0]])
    # every generated function (varargs walkers included) has a truth entry.
    assert set(truth.functions) == set(program.functions)


def test_new_axes_deterministic_across_processes():
    """Byte-identical new-axis output regardless of hash randomization."""
    seeds = [1, 9, 20160613]
    local = {
        seed: hashlib.sha256(generate_program(seed, FULL_AXES).source.encode()).hexdigest()
        for seed in seeds
    }
    script = (
        "import hashlib\n"
        "from repro.gen import GenProfile, generate_program\n"
        "profile = GenProfile(n_structs=2, n_functions=6, union_weight=1.0,\n"
        "                     n_globals=2, varargs_weight=1.0, dispatch_weight=1.0)\n"
        "for seed in (1, 9, 20160613):\n"
        "    digest = hashlib.sha256(\n"
        "        generate_program(seed, profile).source.encode()).hexdigest()\n"
        "    print(seed, digest)\n"
    )
    for hashseed in ("0", "31337"):
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={
                "PYTHONHASHSEED": hashseed,
                "PYTHONPATH": os.path.join(REPO_ROOT, "src"),
                "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
            },
            cwd=REPO_ROOT,
        )
        for line in out.stdout.strip().splitlines():
            seed_text, digest = line.split()
            assert local[int(seed_text)] == digest, (
                f"seed {seed_text} differs under PYTHONHASHSEED={hashseed}"
            )


def test_globals_do_not_leak_address_of():
    """The mini-C code generator rejects &global; the generator must never
    emit it, at any weight."""
    import re

    for seed in range(8):
        source = generate_program(seed, FULL_AXES).source
        assert not re.search(r"&\s*\w+_g\d", source)
