"""Tests for the differential oracle harness and its wiring."""

import json
import subprocess
import sys

import pytest

from repro import analyze_program
from repro.eval.workloads import generated_suite
from repro.gen import (
    GenProfile,
    OracleMismatch,
    answer_key_json,
    generate_corpus,
    generate_program,
    load_naive_reference,
    result_fingerprint,
    run_oracle,
    write_corpus,
)


def test_oracle_sweep_is_clean_on_a_small_corpus():
    report = run_oracle(
        count=4,
        seed=123,
        profile=GenProfile.smoke(),
        profile_name="smoke",
        backends=("serial", "threads"),
        derives_samples=1,
    )
    assert report.ok, report.summary()
    assert report.programs == 4
    assert report.checks["backend:threads"] == 4
    assert report.checks["cache:cold"] == 4
    assert report.checks["cache:warm"] == 4
    assert report.checks["cache:incremental"] == 4
    assert report.checks["conservativeness"] == 4
    assert report.checks["derives"] == 4
    assert "zero mismatches" in report.summary()


def test_oracle_summary_prints_reproduction_line_and_mismatches():
    report = run_oracle(
        count=1,
        seed=5,
        profile=GenProfile.smoke(),
        profile_name="smoke",
        backends=("serial",),
        derives_samples=0,
    )
    assert "--seed 5" in report.summary()
    report.mismatches.append(OracleMismatch("prog", "backend:threads", "boom"))
    assert not report.ok
    assert "MISMATCHES: 1" in report.summary()
    assert "[backend:threads] boom" in report.summary()


def test_result_fingerprint_ignores_timings_but_not_types():
    program = generate_program(2, GenProfile.smoke())
    compiled = program.compile().program
    first = analyze_program(compiled)
    second = analyze_program(compiled)
    assert first.stats["total_seconds"] != second.stats["total_seconds"] or True
    assert result_fingerprint(first) == result_fingerprint(second)

    other = analyze_program(generate_program(3, GenProfile.smoke()).compile().program)
    assert result_fingerprint(first) != result_fingerprint(other)


def test_naive_reference_loads_from_the_test_tree():
    module = load_naive_reference()
    assert module is not None
    assert hasattr(module, "naive_simplify_constraints")
    assert hasattr(module, "naive_saturate")


def test_write_corpus_emits_sources_answer_keys_and_manifest(tmp_path):
    corpus = generate_corpus(2, seed=44, profile=GenProfile.smoke())
    manifest_path = write_corpus(corpus, str(tmp_path))
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert manifest_path.endswith("manifest.json")
    assert len(manifest["programs"]) == 2
    for entry in manifest["programs"]:
        source = (tmp_path / entry["source"]).read_text()
        truth = json.loads((tmp_path / entry["truth"]).read_text())
        assert source.strip()
        assert truth["seed"] == entry["seed"]
        assert truth["functions"]
        for info in truth["functions"].values():
            for param in info["params"]:
                assert param["location"].startswith("stack")
                assert "type" in param and "const" in param


def test_answer_key_json_round_trips_ctypes():
    from repro.core.ctype import ctype_from_json

    program = generate_program(6, GenProfile.default())
    key = answer_key_json(program)
    for info in key["functions"].values():
        for param in info["params"]:
            assert str(ctype_from_json(param["type"])) == param["c"]


def test_generated_suite_feeds_the_evaluation_harness():
    from repro.eval.harness import run_engine
    from repro.baselines import ALL_ENGINES

    workloads = generated_suite(count=2, seed=31, profile=GenProfile.smoke())
    assert len(workloads) == 2
    assert all(w.cluster == "generated" for w in workloads)
    assert all(w.ground_truth.functions for w in workloads)
    report = run_engine(ALL_ENGINES["retypd"](), workloads)
    overall = report.overall()
    assert 0.0 <= overall["conservativeness"] <= 1.0
    assert overall["distance"] < 4.0


def test_gen_cli_oracle_smoke(tmp_path):
    """``python -m repro gen`` end to end: emit + verify, exit code 0."""
    import os

    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    out = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "gen",
            "--count",
            "2",
            "--seed",
            "9",
            "--profile",
            "smoke",
            "--out",
            str(tmp_path / "corpus"),
            "--oracle",
            "--backends",
            "serial,threads",
            "--quiet",
        ],
        capture_output=True,
        text=True,
        cwd=repo_root,
        env={
            "PYTHONPATH": os.path.join(repo_root, "src"),
            "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
        },
    )
    assert out.returncode == 0, out.stdout + out.stderr
    assert "zero mismatches" in out.stdout
    assert (tmp_path / "corpus" / "manifest.json").exists()
