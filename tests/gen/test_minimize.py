"""Tests for the ddmin auto-minimizer (repro.gen.minimize).

Properties: the minimized program still fails the original predicate, is
1-minimal at procedure granularity (no single procedure can be removed
without breaking compilation or losing the failure), and minimization is
deterministic for a fixed seed.  The end-to-end test injects a known
conservativeness bug behind the ``REPRO_ORACLE_INJECT`` env flag, runs the
real oracle sweep with ``minimize_dir`` set, and asserts a ``tests/regress``
style pytest file is emitted, collects cleanly, and passes once the flag is
gone -- with the minimized program at most 25% of the original's size.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.frontend import compile_c
from repro.gen import GenProfile, generate_program, run_oracle
from repro.gen.generator import _render
from repro.gen.minimize import (
    ORACLE_PREDICATES,
    _ddmin,
    _split_statements,
    emit_regression_test,
    minimize_program,
)

SMOKE = GenProfile.smoke()


def _inject_target(program):
    """A source substring unique to one procedure of ``program`` -- the
    'bug site' the injected predicate keys on."""
    name = sorted(n for n in program.functions if "chain" in n or "get" in n)[0]
    return name, f"{name}(int"


@pytest.fixture
def injected(monkeypatch):
    program = generate_program(7, SMOKE, name="inj7")
    name, needle = _inject_target(program)
    monkeypatch.setenv("REPRO_ORACLE_INJECT", needle)
    return program, name


def test_ddmin_finds_single_failing_item():
    items = list(range(20))
    calls = []

    def fails(subset):
        calls.append(tuple(subset))
        return 13 in subset

    assert _ddmin(items, fails) == [13]
    assert calls == [tuple(c) for c in calls]  # deterministic visit order


def test_ddmin_keeps_dependent_pairs():
    # failure requires both 3 and 11: ddmin must keep exactly that pair.
    assert _ddmin(list(range(16)), lambda s: 3 in s and 11 in s) == [3, 11]


def test_split_statements_keeps_braces_balanced():
    program = generate_program(2, SMOKE)
    for name, text in program._blocks:
        header, groups, footer = _split_statements(text)
        assert header.endswith("{") and footer.strip() == "}"
        for group in groups:
            joined = "\n".join(group)
            assert joined.count("{") == joined.count("}")
        assert _render([], [(name, text)]) == _render(
            [], [(name, "\n".join([header] + [l for g in groups for l in g] + [footer]))]
        )


def test_minimized_program_still_fails_and_is_1_minimal(injected):
    program, bug_function = injected
    result = minimize_program(program, "conservativeness", profile_name="smoke")
    predicate = ORACLE_PREDICATES["conservativeness"]
    # still failing, and on the declared bug site.
    assert predicate(result.name, result.source) is not None
    assert bug_function in result.functions
    # 1-minimal at procedure granularity: dropping any surviving procedure
    # either breaks compilation or makes the predicate pass.
    blocks = [(name, text) for name, text in program._blocks if name in result.functions]
    assert len(blocks) == len(result.functions)
    for index in range(len(blocks)):
        if len(blocks) == 1:
            break
        candidate = blocks[:index] + blocks[index + 1 :]
        source = _render(
            list(program._struct_blocks), candidate, list(program._global_decls)
        )
        try:
            compile_c(source)
        except Exception:
            continue  # removal breaks compilation: fine
        # A compiling candidate with one fewer procedure must not fail any
        # more -- otherwise that procedure was removable and the result was
        # not 1-minimal.
        assert predicate(program.name, source) is None, (
            f"procedure {blocks[index][0]} is removable"
        )


def test_minimization_is_deterministic(injected):
    program, _ = injected
    first = minimize_program(program, "conservativeness", profile_name="smoke")
    second = minimize_program(program, "conservativeness", profile_name="smoke")
    assert first.source == second.source
    assert first.functions == second.functions
    assert first.evaluations == second.evaluations


def test_statement_pass_shrinks_function_bodies(injected):
    program, bug_function = injected
    result = minimize_program(program, "conservativeness", profile_name="smoke")
    original = dict(program._blocks)[bug_function]
    assert result.reduction <= 0.25, (
        f"minimized to {result.reduction:.0%} of the original, expected <= 25%"
    )
    assert len(result.source) < len(program.source)
    assert original.splitlines()[0] in result.source  # signature survives


def test_minimize_requires_a_failing_program():
    program = generate_program(3, SMOKE)
    with pytest.raises(ValueError):
        minimize_program(program, "conservativeness")
    with pytest.raises(ValueError):
        minimize_program(program, "no-such-predicate")


def test_oracle_end_to_end_emits_collectable_reproducer(tmp_path, monkeypatch):
    from repro.gen import generate_corpus

    # the exact program the count=1 sweep below will regenerate and check.
    program = generate_corpus(1, 7, SMOKE)[0]
    _, needle = _inject_target(program)
    monkeypatch.setenv("REPRO_ORACLE_INJECT", needle)
    out_dir = tmp_path / "regress"
    report = run_oracle(
        count=1,
        seed=7,
        profile=SMOKE,
        profile_name="smoke",
        backends=("serial",),
        derives_samples=0,
        minimize_dir=str(out_dir),
    )
    assert not report.ok
    assert any(m.check == "conservativeness" for m in report.mismatches)
    assert len(report.reproducers) == 1
    path = report.reproducers[0]
    assert os.path.exists(path)
    assert "reproducer:" in report.summary()

    # The emitted file is a real pytest module: it collects cleanly and,
    # with the injected bug gone, passes.
    env = {
        "PYTHONPATH": os.path.join(REPO_ROOT, "src"),
        "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
    }
    collected = subprocess.run(
        [sys.executable, "-m", "pytest", path, "--collect-only", "-q"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert collected.returncode == 0, collected.stdout + collected.stderr
    passed = subprocess.run(
        [sys.executable, "-m", "pytest", path, "-q"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert passed.returncode == 0, passed.stdout + passed.stderr

    # The committed program is small: <= 25% of the failing member's source.
    content = open(path, encoding="utf-8").read()
    minimized = content.split('MINIMIZED_SOURCE = """\\\n', 1)[1].split('"""', 1)[0]
    assert len(minimized) <= 0.25 * len(program.source)


def test_emit_is_idempotent_and_content_addressed(tmp_path, injected):
    program, _ = injected
    result = minimize_program(program, "conservativeness", profile_name="smoke")
    first = emit_regression_test(result, str(tmp_path))
    second = emit_regression_test(result, str(tmp_path))
    assert first == second
    assert len(list(tmp_path.iterdir())) == 1
