"""Hand-written seed regression in the auto-minimizer's emitted format.

This file exists so the ``tests/regress`` runner is always exercised: it is
exactly what ``repro.gen.minimize.emit_regression_test`` writes (a minimized
mini-C program plus one predicate assertion), derived once from generator
seed 20160673481839 (the first program of the ``--count 1 --seed 20160613
--profile smoke`` sweep) with an artificial conservativeness failure
injected via ``REPRO_ORACLE_INJECT`` and then minimized to 10% of the
original source.  With no defect live, the predicate passes.

Reproduce the derivation:
    REPRO_ORACLE_INJECT='gen20160613_0_chain0(int' \\
        python -m repro gen --oracle --count 1 --seed 20160613 \\
        --profile smoke --backends serial --minimize
"""

MINIMIZED_SOURCE = """\
struct gen20160613_0_s0 {
    struct gen20160613_0_s0 * next;
    unsigned count0;
    int value1;
};

struct gen20160613_0_s1 {
    int value0;
    int value1;
};

unsigned gen20160613_0_g0;

int gen20160613_0_chain0(int x) {
    return x * 2 + 9;
}
"""


def test_seed_regression_conservativeness():
    from repro.gen.minimize import check_predicate

    failure = check_predicate(
        "conservativeness", "gen20160613_0", MINIMIZED_SOURCE
    )
    assert failure is None, failure


def test_seed_regression_backend_threads():
    from repro.gen.minimize import check_predicate

    failure = check_predicate(
        "backend:threads", "gen20160613_0", MINIMIZED_SOURCE
    )
    assert failure is None, failure


def test_seed_regression_cache_warm():
    from repro.gen.minimize import check_predicate

    failure = check_predicate("cache:warm", "gen20160613_0", MINIMIZED_SOURCE)
    assert failure is None, failure
