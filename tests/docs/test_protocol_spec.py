"""docs/protocol.md is generated-checked against repro/server/protocol.py.

The spec must name every operation as a ``### `verb``` heading, document every
typed error code in its table, and quote the version and size constants the
implementation actually uses -- and it must not document verbs or codes that
no longer exist.
"""

import os
import re

from repro.server import protocol

SPEC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "docs",
    "protocol.md",
)


def _spec_text():
    with open(SPEC, "r", encoding="utf-8") as handle:
        return handle.read()


def test_every_operation_has_a_spec_section_and_vice_versa():
    text = _spec_text()
    documented = set(re.findall(r"^### `([a-z.]+)`$", text, flags=re.MULTILINE))
    assert documented == set(protocol.OPERATIONS), (
        f"spec sections {sorted(documented)} != implemented operations "
        f"{sorted(protocol.OPERATIONS)}"
    )


def test_every_error_code_is_documented_and_vice_versa():
    text = _spec_text()
    table = re.findall(r"^\| `([a-z_]+)` \|", text, flags=re.MULTILINE)
    assert table, "error-code table missing"
    assert set(table) == set(protocol.ErrorCode.ALL), (
        f"documented codes {sorted(set(table))} != implemented codes "
        f"{sorted(protocol.ErrorCode.ALL)}"
    )
    # The table lists each code exactly once.
    assert len(table) == len(set(table))


def test_constants_are_quoted_accurately():
    text = _spec_text()
    version = re.search(r"current version is\s+`(\d+)`", text)
    assert version, "spec does not state the current protocol version"
    assert int(version.group(1)) == protocol.PROTOCOL_VERSION
    assert str(protocol.MAX_LINE_BYTES) in text, (
        "spec does not quote MAX_LINE_BYTES's actual value"
    )
    assert protocol.SERVER_NAME in text


def test_source_kinds_are_documented():
    text = _spec_text()
    for kind in protocol.SOURCE_KINDS:
        assert f'"{kind}"' in text or f"`{kind}`" in text


def test_issue_named_error_codes_are_typed():
    """The codes the admission-control design hinges on exist and are spec'd."""
    text = _spec_text()
    for code in (protocol.ErrorCode.OVERLOADED, protocol.ErrorCode.TOO_LARGE):
        assert f"`{code}`" in text
