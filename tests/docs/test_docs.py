"""The docs subsystem is generated-checked: references cannot rot silently.

* every dotted code reference in ``docs/paper-map.md`` must import (module,
  class, function, or method);
* every repo-relative path mentioned in any ``docs/*.md`` or the README must
  exist;
* every intra-repo markdown link (``[text](target)``) must resolve;
* the docs the README promises actually exist and are linked.
"""

import importlib
import os
import re

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
DOCS = os.path.join(REPO, "docs")

DOC_FILES = [
    os.path.join(DOCS, name) for name in sorted(os.listdir(DOCS)) if name.endswith(".md")
] + [os.path.join(REPO, "README.md")]

#: dotted references in backticks: repro.pkg.module.Attr[.method]
_CODE_REF = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)`")
#: repo-relative paths in backticks (tests/..., benchmarks/..., src/..., docs/...)
_PATH_REF = re.compile(r"`((?:tests|benchmarks|src|docs|examples)/[^`]+\.(?:py|md|txt|json))`")
#: markdown links, excluding external schemes and anchors
_LINK = re.compile(r"\[[^\]]*\]\(([^)#][^)]*)\)")


def _read(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _resolve_dotted(dotted):
    """Import a dotted reference, peeling attributes off the right."""
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        for attribute in parts[split:]:
            obj = getattr(obj, attribute)  # raises AttributeError on drift
        return obj
    raise ImportError(f"no importable prefix in {dotted!r}")


def test_docs_directory_has_the_promised_files():
    for name in ("paper-map.md", "protocol.md", "operations.md"):
        assert os.path.exists(os.path.join(DOCS, name)), f"docs/{name} missing"


@pytest.mark.parametrize("path", DOC_FILES, ids=[os.path.basename(p) for p in DOC_FILES])
def test_code_references_resolve(path):
    text = _read(path)
    refs = sorted(set(_CODE_REF.findall(text)))
    if os.path.basename(path) == "paper-map.md":
        assert len(refs) >= 30, "paper-map should reference the whole core surface"
    for dotted in refs:
        try:
            _resolve_dotted(dotted)
        except (ImportError, AttributeError) as exc:
            pytest.fail(f"{os.path.basename(path)}: unresolvable reference {dotted!r}: {exc}")


@pytest.mark.parametrize("path", DOC_FILES, ids=[os.path.basename(p) for p in DOC_FILES])
def test_repo_paths_exist(path):
    text = _read(path)
    for relative in sorted(set(_PATH_REF.findall(text))):
        assert os.path.exists(os.path.join(REPO, relative)), (
            f"{os.path.basename(path)} mentions {relative}, which does not exist"
        )


@pytest.mark.parametrize("path", DOC_FILES, ids=[os.path.basename(p) for p in DOC_FILES])
def test_intra_repo_links_resolve(path):
    text = _read(path)
    for target in _LINK.findall(text):
        if "://" in target or target.startswith("mailto:"):
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
        assert os.path.exists(resolved), (
            f"{os.path.basename(path)}: broken intra-repo link {target!r}"
        )


def test_paper_map_covers_the_named_paper_artifacts():
    """The ISSUE-level contract: the named artifacts all have a row."""
    text = _read(os.path.join(DOCS, "paper-map.md"))
    for artifact in (
        "Figure 3 deduction rules",
        "saturation",
        "Sketches",
        "lattice",
        "REFINEPARAMETERS",
    ):
        assert artifact.lower() in text.lower(), f"paper-map lacks {artifact!r}"


def test_readme_links_the_docs():
    text = _read(os.path.join(REPO, "README.md"))
    for name in ("docs/paper-map.md", "docs/protocol.md", "docs/operations.md"):
        assert name in text, f"README does not link {name}"
