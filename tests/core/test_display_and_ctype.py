"""Tests for the C type model and the sketch-to-C display policies (section 4.3)."""

import pytest

from repro.core import (
    FunctionType,
    IntType,
    PointerType,
    Sketch,
    StructRef,
    StructType,
    TypeDisplay,
    TypedefType,
    UnionType,
    UnknownType,
    Variance,
    VoidType,
    default_lattice,
    field,
    render_function,
)
from repro.core.ctype import StructField, is_integral, is_pointer, strip_typedefs
from repro.core.labels import InLabel, LoadLabel, OutLabel, StoreLabel

LOAD = LoadLabel()
STORE = StoreLabel()


# -- ctype model ------------------------------------------------------------------------


def test_ctype_rendering():
    assert str(IntType(32, True)) == "int"
    assert str(IntType(8, False)) == "unsigned char"
    assert str(PointerType(IntType(8, True), const=True)) == "const char *"
    assert str(VoidType()) == "void"
    struct = StructType("node", (StructField(0, PointerType(StructRef("node"))), StructField(4, IntType(32))))
    assert "struct node" in str(struct)


def test_pointer_depth():
    assert PointerType(PointerType(IntType(32))).pointer_depth() == 2
    assert IntType(32).pointer_depth() == 0
    assert TypedefType("HANDLE", PointerType(VoidType())).pointer_depth() == 1


def test_struct_size_and_field_lookup():
    struct = StructType("s", (StructField(0, IntType(32)), StructField(4, IntType(32))))
    assert struct.size_bits == 64
    assert struct.field_at(4).ctype == IntType(32)
    assert struct.field_at(12) is None


def test_strip_typedefs_and_predicates():
    handle = TypedefType("HANDLE", PointerType(VoidType()))
    assert isinstance(strip_typedefs(handle), PointerType)
    assert is_pointer(handle)
    assert is_integral(TypedefType("DWORD", IntType(32, False)))


def test_render_function():
    ftype = FunctionType((PointerType(IntType(8), const=True), IntType(32)), IntType(32))
    text = render_function("strncmp_like", ftype, ["s", "n"])
    assert text == "int strncmp_like(const char * s, int n);"
    assert render_function("f", FunctionType((), VoidType())) == "void f(void);"


# -- display ----------------------------------------------------------------------------


def _display():
    return TypeDisplay(default_lattice())


def test_scalar_display_prefers_variance_appropriate_bound():
    display = _display()
    assert display.scalar_from_bounds("int", "TOP", Variance.COVARIANT) == IntType(32, True)
    assert str(display.scalar_from_bounds("BOTTOM", "#FileDescriptor", Variance.CONTRAVARIANT)) == "#FileDescriptor"
    # no evidence at all: default machine-word integer
    assert display.scalar_from_bounds("BOTTOM", "TOP", Variance.COVARIANT) == IntType(32, True)


def test_union_policy_builds_antichain():
    display = _display()
    union = display.union_of_atoms(["int", "str"])
    assert isinstance(union, UnionType)
    assert len(union.members) == 2
    single = display.union_of_atoms(["int", "#FileDescriptor"])
    assert not isinstance(single, UnionType)


def test_pointer_display_with_const():
    lattice = default_lattice()
    sketch = Sketch(lattice)
    pointee = sketch.add_node()
    sketch.add_edge(sketch.root, LOAD, pointee)
    sketch.nodes[pointee].upper = "int"
    display = _display()
    ctype = display.ctype_of_sketch(sketch, Variance.CONTRAVARIANT)
    assert isinstance(ctype, PointerType)
    assert ctype.const  # load but no store
    # adding a store capability removes the const annotation
    sketch.add_edge(sketch.root, STORE, pointee)
    ctype = _display().ctype_of_sketch(sketch, Variance.CONTRAVARIANT)
    assert isinstance(ctype, PointerType)
    assert not ctype.const


def test_struct_display_from_fields():
    lattice = default_lattice()
    sketch = Sketch(lattice)
    pointee = sketch.add_node()
    sketch.add_edge(sketch.root, LOAD, pointee)
    f0 = sketch.add_node()
    f4 = sketch.add_node()
    sketch.add_edge(pointee, field(32, 0), f0)
    sketch.add_edge(pointee, field(32, 4), f4)
    sketch.nodes[f4].upper = "#FileDescriptor"
    display = _display()
    ctype = display.ctype_of_sketch(sketch, Variance.CONTRAVARIANT)
    assert isinstance(ctype, PointerType)
    assert isinstance(ctype.pointee, StructType)
    assert {f.offset for f in ctype.pointee.fields} == {0, 4}


def test_recursive_struct_gets_named_and_rerolled():
    lattice = default_lattice()
    sketch = Sketch(lattice)
    pointee = sketch.add_node()
    sketch.add_edge(sketch.root, LOAD, pointee)
    sketch.add_edge(pointee, field(32, 0), sketch.root)  # next pointer loops back
    handle = sketch.add_node()
    sketch.add_edge(pointee, field(32, 4), handle)
    display = _display()
    ctype = display.ctype_of_sketch(sketch, Variance.CONTRAVARIANT)
    assert isinstance(ctype, PointerType)
    pointee_type = ctype.pointee
    assert isinstance(pointee_type, (StructType, StructRef))
    assert display.struct_definitions(), "a named struct should have been synthesized"


def test_single_field_at_offset_zero_collapses():
    """Pointer-to-struct-with-one-field is displayed as pointer-to-field (section 2.4)."""
    lattice = default_lattice()
    sketch = Sketch(lattice)
    pointee = sketch.add_node()
    sketch.add_edge(sketch.root, LOAD, pointee)
    leaf = sketch.add_node()
    sketch.add_edge(pointee, field(32, 0), leaf)
    leaf_node = sketch.nodes[leaf]
    leaf_node.upper = "int"
    ctype = _display().ctype_of_sketch(sketch, Variance.CONTRAVARIANT)
    assert isinstance(ctype, PointerType)
    assert isinstance(ctype.pointee, (IntType, TypedefType))


def test_function_display_from_in_out():
    lattice = default_lattice()
    sketch = Sketch(lattice)
    argument = sketch.add_node()
    result = sketch.add_node()
    sketch.add_edge(sketch.root, InLabel("stack0"), argument)
    sketch.add_edge(sketch.root, OutLabel("eax"), result)
    sketch.nodes[result].lower = "int"
    ctype = _display().ctype_of_sketch(sketch)
    assert isinstance(ctype, FunctionType)
    assert len(ctype.params) == 1


def test_semantic_tag_becomes_typedef():
    display = _display()
    ctype = display.atom_to_ctype("#FileDescriptor")
    assert isinstance(ctype, TypedefType)
    assert ctype.name == "#FileDescriptor"
    assert isinstance(ctype.underlying, IntType)


def test_function_type_builder_orders_stack_params():
    lattice = default_lattice()
    display = _display()
    s_int = Sketch(lattice)
    s_int.nodes[s_int.root].upper = "int"
    s_ptr = Sketch(lattice)
    child = s_ptr.add_node()
    s_ptr.add_edge(s_ptr.root, LOAD, child)
    ftype, names = display.function_type(
        [("stack4", s_int), ("stack0", s_ptr)], [("eax", s_int)]
    )
    assert len(ftype.params) == 2
    assert isinstance(ftype.params[0], PointerType)  # stack0 first
    assert names == ["arg_stack0", "arg_stack4"]
