"""The pointer-subtyping examples of section 3.3 and Figure 4.

Both aliased-copy programs must entail ``X <= Y``; the naive unary ``Ptr``
constructor cannot type both, which is why the paper splits the read and write
capabilities into ``.load`` / ``.store`` and adds the S-POINTER rule.
"""

import pytest

from repro.core import parse_constraint, parse_constraints, proves
from repro.core.deduction import DeductionEngine


# f() { p = q; *p = x; y = *q; }
PROGRAM_1 = [
    "q <= p",
    "x <= p.store",
    "q.load <= y",
]

# g() { p = q; *q = x; y = *p; }
PROGRAM_2 = [
    "q <= p",
    "x <= q.store",
    "p.load <= y",
]


@pytest.mark.parametrize("program", [PROGRAM_1, PROGRAM_2], ids=["fig4-f", "fig4-g"])
def test_copy_through_aliased_pointers_saturation(program):
    constraints = parse_constraints(program)
    goal = parse_constraint("x <= y")
    assert proves(constraints, goal)


@pytest.mark.parametrize("program", [PROGRAM_1, PROGRAM_2], ids=["fig4-f", "fig4-g"])
def test_copy_through_aliased_pointers_deduction(program):
    constraints = parse_constraints(program)
    engine = DeductionEngine(constraints, max_depth=2)
    goal = parse_constraint("x <= y")
    assert engine.entails(goal)


def test_wrong_direction_not_provable():
    """The converse flow must not be derivable (no over-unification)."""
    constraints = parse_constraints(PROGRAM_1)
    assert not proves(constraints, parse_constraint("y <= x"))


def test_store_load_consistency():
    """S-POINTER: what is stored through a pointer can be loaded back."""
    constraints = parse_constraints(["int <= a.store", "a.load <= b"])
    assert proves(constraints, parse_constraint("int <= b"))


def test_unrelated_pointers_stay_unrelated():
    constraints = parse_constraints(
        ["x <= p.store", "q.load <= y"]
    )
    assert not proves(constraints, parse_constraint("x <= y"))
