"""The integer kernel: dense IDs, decode views, and hash-order independence.

The solver's hot core (``core/graph.py`` / ``core/saturation.py`` /
``core/simplify.py``) runs on dense integer node IDs and packed-int facts;
``Node``/``Edge`` objects exist only as lazily-decoded views at the scheme/
sketch boundary.  These tests pin the kernel's contracts:

* the decoded object views (``nodes``, ``edges()``, ``out_edges`` ...) are
  exactly consistent with the integer indexes they decode from;
* every ID space is *insertion-ordered* -- derived from sorted interning at
  construction, never from Python hash order -- proven end to end by running
  the same analysis under different ``PYTHONHASHSEED`` values in subprocesses
  and requiring byte-identical output;
* simplification output is invariant under permutation of the input
  constraint lines (IDs may shift; the answer may not).
"""

import json
import os
import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.core import (
    ConstraintGraph,
    EdgeKind,
    parse_constraints,
    saturate,
    simplify_constraints,
)
from repro.core.graph import K_FORGET, K_ORIGINAL, K_RECALL, K_SATURATION
from repro.core.intern import InternPool, StringTable

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "src"
)

_VARS = ["a", "b", "c", "d", "p", "q"]
_LABELS = ["", ".load", ".store", ".sigma32@0", ".load.sigma32@4", ".store.sigma32@0"]

_KIND_BY_ID = {
    K_ORIGINAL: EdgeKind.ORIGINAL,
    K_SATURATION: EdgeKind.SATURATION,
    K_FORGET: EdgeKind.FORGET,
    K_RECALL: EdgeKind.RECALL,
}


@st.composite
def constraint_lines(draw):
    lines = []
    for _ in range(draw(st.integers(min_value=1, max_value=7))):
        left = draw(st.sampled_from(_VARS)) + draw(st.sampled_from(_LABELS))
        right = draw(st.sampled_from(_VARS)) + draw(st.sampled_from(_LABELS))
        if left != right:
            lines.append(f"{left} <= {right}")
    return lines


# ---------------------------------------------------------------------------
# Intern pool basics
# ---------------------------------------------------------------------------


def test_intern_pool_ids_are_dense_and_insertion_ordered():
    pool = InternPool()
    assert pool.intern("x") == 0
    assert pool.intern("y") == 1
    assert pool.intern("x") == 0  # stable on re-intern
    assert len(pool) == 2
    assert list(pool) == ["x", "y"]
    assert pool[1] == "y"
    assert "y" in pool and "z" not in pool
    assert pool.get("z") is None


def test_string_table_round_trips_to_list():
    table = StringTable()
    ids = [table.intern(s) for s in ("f", "f.in_0", "f", "int")]
    assert ids == [0, 1, 0, 2]
    assert table.to_list() == ["f", "f.in_0", "int"]


# ---------------------------------------------------------------------------
# Decode views agree with the integer indexes
# ---------------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(constraint_lines())
def test_object_views_are_consistent_with_int_indexes(lines):
    if not lines:
        return
    graph = ConstraintGraph(parse_constraints(lines))
    saturate(graph)

    num_nodes = graph.num_nodes
    assert num_nodes == 2 * len(graph._dtvs)

    # DTV interning is sorted at construction: did order == sorted-by-str.
    dtv_strs = [str(dtv) for dtv in graph._dtvs]
    assert dtv_strs == sorted(dtv_strs)

    # Every integer edge record decodes to exactly the object edge set.
    decoded = set()
    for src in range(num_nodes):
        for kind_id, lidp, tgt in graph.out_records(src):
            label = None if lidp == 0 else graph._labels[lidp - 1]
            decoded.add((src, tgt, _KIND_BY_ID[kind_id], label))
    objects = set()
    node_ids = {}
    for edge in graph.edges():
        src = graph._node_nid(edge.source)
        tgt = graph._node_nid(edge.target)
        node_ids[edge.source] = src
        objects.add((src, tgt, edge.kind, edge.label))
    assert decoded == objects

    # Per-node views: out_edges/in_edges are the per-nid slices of the same
    # records, and null_out_ids mirrors the unlabeled subset.
    for node in graph.nodes:
        nid = graph._node_nid(node)
        outs = {(e.target, e.kind, e.label) for e in graph.out_edges(node)}
        recs = {
            (graph._node_obj(tgt), _KIND_BY_ID[k], None if lp == 0 else graph._labels[lp - 1])
            for k, lp, tgt in graph.out_records(nid)
        }
        assert outs == recs
        null_ids = sorted(graph.null_out_ids(nid))
        null_objs = sorted(
            graph._node_nid(e.target) for e in graph.null_out_edges(node)
        )
        assert null_ids == null_objs
        for edge in graph.out_edges(node):
            assert graph.has_edge(node, edge.target, edge.kind, edge.label)
            assert edge in graph.in_edges(edge.target) or edge in graph.out_edges(node)

    # The covariant/contravariant twin convention: nid ^ 1 flips variance only.
    for node, nid in node_ids.items():
        twin = graph._node_obj(nid ^ 1)
        assert twin.dtv == node.dtv
        assert twin.variance != node.variance


@settings(max_examples=60, deadline=None)
@given(constraint_lines(), st.randoms(use_true_random=False))
def test_simplify_is_invariant_under_input_permutation(lines, rng):
    """Different insertion orders shift IDs but never the simplified answer."""
    if not lines:
        return
    shuffled = list(lines)
    rng.shuffle(shuffled)
    interesting = {"a", "b"}
    base = set(simplify_constraints(parse_constraints(lines), interesting).subtype)
    perm = set(simplify_constraints(parse_constraints(shuffled), interesting).subtype)
    assert base == perm


# ---------------------------------------------------------------------------
# Hash-order independence, proven in subprocesses
# ---------------------------------------------------------------------------

_HASHSEED_SCRIPT = r"""
import json, sys
from repro.core import ConstraintGraph, parse_constraints, saturate, simplify_constraints

lines = [
    "y <= p",
    "p <= x",
    "A <= x.store",
    "y.load <= B",
    "q.sigma32@0 <= a.load",
    "b.store.sigma32@0 <= q",
]
constraints = parse_constraints(lines)
graph = ConstraintGraph(constraints)
saturate(graph)
payload = {
    "dtv_order": [str(d) for d in graph._dtvs],
    "label_order": [str(l) for l in graph._labels],
    "edge_list": [
        [str(e.source), str(e.target), e.kind.name, str(e.label)]
        for e in graph.edges()
    ],
    "simplified": sorted(
        str(c) for c in simplify_constraints(constraints, {"A", "B"}).subtype
    ),
}
sys.stdout.write(json.dumps(payload, sort_keys=True))
"""

_FINGERPRINT_SCRIPT = r"""
import sys
from repro.gen import generate_corpus, named_profiles, result_fingerprint
from repro import analyze_program

program = generate_corpus(1, 20160613, named_profiles()["smoke"])[0]
types = analyze_program(program.compile().program)
sys.stdout.write(result_fingerprint(types))
"""


def _run_under_hashseed(script, seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(seed)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_graph_ids_and_simplification_are_hash_order_independent():
    """Same graph internals byte-for-byte under three different hash seeds."""
    outputs = {seed: _run_under_hashseed(_HASHSEED_SCRIPT, seed) for seed in (0, 1, 42)}
    assert outputs[0] == outputs[1] == outputs[42]
    payload = json.loads(outputs[0])
    assert payload["dtv_order"] == sorted(payload["dtv_order"])
    assert payload["simplified"], "expected at least one simplified constraint"


def test_result_fingerprint_is_hash_order_independent():
    """End to end: a full analysis fingerprint is identical across hash seeds."""
    outputs = {seed: _run_under_hashseed(_FINGERPRINT_SCRIPT, seed) for seed in (0, 7)}
    assert outputs[0] == outputs[7]
    assert len(outputs[0]) == 64  # sha256 hex
