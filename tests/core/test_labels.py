"""Unit and property tests for field labels and variance (Table 1, Definition 3.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    CONTRAVARIANT,
    COVARIANT,
    FieldLabel,
    InLabel,
    LoadLabel,
    OutLabel,
    StoreLabel,
    Variance,
    field,
    in_label,
    out_label,
    parse_label,
    parse_label_word,
    path_variance,
)


def test_variance_of_each_label():
    assert InLabel("stack0").variance is CONTRAVARIANT
    assert OutLabel("eax").variance is COVARIANT
    assert LoadLabel().variance is COVARIANT
    assert StoreLabel().variance is CONTRAVARIANT
    assert FieldLabel(32, 4).variance is COVARIANT


def test_variance_is_a_sign_monoid():
    assert COVARIANT * COVARIANT is COVARIANT
    assert CONTRAVARIANT * CONTRAVARIANT is COVARIANT
    assert COVARIANT * CONTRAVARIANT is CONTRAVARIANT
    assert CONTRAVARIANT * COVARIANT is CONTRAVARIANT


def test_variance_flip():
    assert COVARIANT.flip() is CONTRAVARIANT
    assert CONTRAVARIANT.flip() is COVARIANT


def test_path_variance_empty_word_is_covariant():
    assert path_variance([]) is COVARIANT


def test_path_variance_examples_from_figure2():
    # in_stack0.load.sigma32@4 is contravariant (one contravariant letter).
    word = (in_label("stack0"), LoadLabel(), field(32, 4))
    assert path_variance(word) is CONTRAVARIANT
    # out_eax is covariant.
    assert path_variance((out_label("eax"),)) is COVARIANT
    # store.store is covariant (two flips).
    assert path_variance((StoreLabel(), StoreLabel())) is COVARIANT


def test_label_string_forms():
    assert str(LoadLabel()) == "load"
    assert str(StoreLabel()) == "store"
    assert str(InLabel("stack4")) == "in_stack4"
    assert str(OutLabel("eax")) == "out_eax"
    assert str(FieldLabel(32, 8)) == "sigma32@8"


def test_parse_label_roundtrip_fixed():
    for label in (LoadLabel(), StoreLabel(), InLabel("stack0"), OutLabel("eax"), FieldLabel(8, 12)):
        assert parse_label(str(label)) == label


def test_parse_label_word():
    word = parse_label_word("load.sigma32@4")
    assert word == (LoadLabel(), FieldLabel(32, 4))
    assert parse_label_word("") == ()


def test_parse_label_rejects_garbage():
    with pytest.raises(ValueError):
        parse_label("not_a_label!")


def test_in_label_from_int():
    assert in_label(4) == InLabel("stack4")
    assert in_label("ecx") == InLabel("ecx")


@given(st.lists(st.sampled_from([LoadLabel(), StoreLabel(), InLabel("stack0"), OutLabel("eax"), FieldLabel(32, 0)]), max_size=8))
def test_path_variance_is_product_of_letter_variances(labels):
    expected = COVARIANT
    for label in labels:
        expected = expected * label.variance
    assert path_variance(labels) is expected


@given(
    st.lists(st.sampled_from([LoadLabel(), StoreLabel(), FieldLabel(32, 0)]), max_size=5),
    st.lists(st.sampled_from([LoadLabel(), StoreLabel(), FieldLabel(32, 4)]), max_size=5),
)
def test_path_variance_is_a_monoid_homomorphism(left, right):
    assert path_variance(left + right) is path_variance(left) * path_variance(right)


@given(st.sampled_from(["load", "store", "in_stack0", "in_ecx", "out_eax", "sigma32@4", "sigma8@0"]))
def test_parse_str_roundtrip(text):
    assert str(parse_label(text)) == text


def test_labels_are_hashable_and_orderable():
    labels = {LoadLabel(), StoreLabel(), FieldLabel(32, 0), FieldLabel(32, 4)}
    assert len(labels) == 4
    assert sorted([FieldLabel(32, 4), FieldLabel(32, 0)]) == [FieldLabel(32, 0), FieldLabel(32, 4)]
