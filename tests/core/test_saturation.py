"""The Figure 14 saturation example.

Constraint set: ``{y <= p, p <= x, A <= x.store, y.load <= B}`` (the program
``p = y; x = p; *x = A; B = *y;``).  Saturation must add the shortcut edge from
``(x.store, +)`` to ``(y.load, +)`` via the lazy S-POINTER rule, after which
``A <= B`` is derivable.
"""

from repro.core import (
    ConstraintGraph,
    EdgeKind,
    Node,
    Variance,
    parse_constraint,
    parse_constraints,
    parse_dtv,
    proves,
    saturate,
)


FIG14 = ["y <= p", "p <= x", "A <= x.store", "y.load <= B"]


def test_figure14_shortcut_edge():
    constraints = parse_constraints(FIG14)
    graph = ConstraintGraph(constraints)
    added = saturate(graph)
    assert added >= 1
    source = Node(parse_dtv("x.store"), Variance.COVARIANT)
    target = Node(parse_dtv("y.load"), Variance.COVARIANT)
    assert graph.has_edge(source, target, EdgeKind.SATURATION)


def test_figure14_interesting_constraint():
    constraints = parse_constraints(FIG14)
    assert proves(constraints, parse_constraint("A <= B"))


def test_figure14_no_reverse_flow():
    constraints = parse_constraints(FIG14)
    assert not proves(constraints, parse_constraint("B <= A"))


def test_saturation_is_idempotent():
    constraints = parse_constraints(FIG14)
    graph = ConstraintGraph(constraints)
    saturate(graph)
    edges_after_first = len(graph)
    saturate(graph)
    assert len(graph) == edges_after_first


def test_original_edges_present_in_both_polarities():
    constraints = parse_constraints(["a <= b"])
    graph = ConstraintGraph(constraints)
    a_cov = Node(parse_dtv("a"), Variance.COVARIANT)
    b_cov = Node(parse_dtv("b"), Variance.COVARIANT)
    a_con = Node(parse_dtv("a"), Variance.CONTRAVARIANT)
    b_con = Node(parse_dtv("b"), Variance.CONTRAVARIANT)
    assert graph.has_edge(a_cov, b_cov, EdgeKind.ORIGINAL)
    assert graph.has_edge(b_con, a_con, EdgeKind.ORIGINAL)


def test_forget_recall_edges_flip_variance_for_store():
    constraints = parse_constraints(["A <= x.store"])
    graph = ConstraintGraph(constraints)
    inner = Node(parse_dtv("x.store"), Variance.COVARIANT)
    outer = Node(parse_dtv("x"), Variance.CONTRAVARIANT)
    assert graph.has_edge(inner, outer, EdgeKind.FORGET)
    assert graph.has_edge(outer, inner, EdgeKind.RECALL)
