"""C-type JSON round trip (the displayed-types leg of the wire protocol)."""

import json

import pytest

from repro.core.ctype import (
    ArrayType,
    BoolType,
    CodeType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructField,
    StructRef,
    StructType,
    TypedefType,
    UnionType,
    UnknownType,
    VoidType,
    ctype_from_json,
    ctype_to_json,
)

SAMPLES = [
    VoidType(),
    UnknownType(),
    UnknownType(32),
    BoolType(),
    IntType(32, True),
    IntType(64, False),
    IntType(8, True),
    FloatType(64),
    CodeType(),
    TypedefType("size_t", IntType(32, False)),
    TypedefType("FILE", UnknownType(32)),
    PointerType(IntType(8, True), const=True),
    PointerType(PointerType(VoidType())),
    StructRef("struct_3"),
    UnionType((IntType(32, True), PointerType(UnknownType()))),
    FunctionType((IntType(32, True), PointerType(IntType(8, True), const=True)), VoidType()),
    ArrayType(IntType(16, True), 8),
    ArrayType(UnknownType(), None),
    StructType(
        "list",
        (
            StructField(0, PointerType(StructRef("list")), "next"),
            StructField(4, IntType(32, True), "value"),
        ),
    ),
    # Nested: a struct containing a union of a function pointer and a typedef.
    StructType(
        "widget",
        (
            StructField(
                0,
                UnionType(
                    (
                        PointerType(FunctionType((IntType(32, True),), IntType(32, True))),
                        TypedefType("HANDLE", PointerType(VoidType())),
                    )
                ),
                "u",
            ),
        ),
    ),
]


@pytest.mark.parametrize("ctype", SAMPLES, ids=[str(c) for c in SAMPLES])
def test_round_trip_preserves_equality(ctype):
    payload = json.loads(json.dumps(ctype_to_json(ctype)))
    rebuilt = ctype_from_json(payload)
    assert rebuilt == ctype
    assert str(rebuilt) == str(ctype)
    # A second trip is a fixpoint.
    assert ctype_to_json(rebuilt) == ctype_to_json(ctype)


def test_round_trip_preserves_sizes_and_depth():
    deep = PointerType(PointerType(StructRef("s")))
    rebuilt = ctype_from_json(ctype_to_json(deep))
    assert rebuilt.pointer_depth() == 2
    assert rebuilt.size_bits == deep.size_bits


def test_unknown_payload_kind_raises():
    with pytest.raises(ValueError):
        ctype_from_json({"k": "quaternion"})


def test_displayed_types_from_real_analysis_round_trip():
    from repro import analyze_program
    from repro.frontend import compile_c

    source = """
    struct node { struct node * next; int value; };

    int total(const struct node * head) {
        int sum;
        sum = 0;
        while (head != NULL) {
            sum = sum + head->value;
            head = head->next;
        }
        return sum;
    }
    """
    types = analyze_program(compile_c(source).program)
    for fn in types.functions.values():
        rebuilt = ctype_from_json(json.loads(json.dumps(ctype_to_json(fn.function_type))))
        assert rebuilt == fn.function_type
    for struct in types.struct_definitions().values():
        assert ctype_from_json(ctype_to_json(struct)) == struct
