"""Tests for the auxiliary lattice Lambda (section 3.5)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import BOTTOM, TOP, TypeLattice, default_lattice


@pytest.fixture(scope="module")
def lattice():
    return default_lattice()


def test_top_and_bottom_order(lattice):
    for element in lattice.elements:
        assert lattice.leq(BOTTOM, element)
        assert lattice.leq(element, TOP)


def test_figure2_tags(lattice):
    assert lattice.leq("#FileDescriptor", "int")
    assert lattice.leq("#SuccessZ", "int")
    assert lattice.meet("int", "#FileDescriptor") == "#FileDescriptor"
    assert lattice.join("int", "#SuccessZ") == "int"


def test_windows_handle_hierarchy(lattice):
    # section 2.8: HGDI is a generic handle; HBRUSH/HPEN are more specific.
    assert lattice.leq("HBRUSH", "HGDI")
    assert lattice.leq("HPEN", "HANDLE")
    assert lattice.join("HBRUSH", "HPEN") == "HGDI"


def test_incomparable_join_goes_up(lattice):
    assert lattice.join("float", "int") == TOP
    assert lattice.meet("float", "int") == BOTTOM


def test_join_meet_identity_elements(lattice):
    assert lattice.join("int", BOTTOM) == "int"
    assert lattice.meet("int", TOP) == "int"
    assert lattice.join("int", TOP) == TOP
    assert lattice.meet("int", BOTTOM) == BOTTOM


def test_user_extension():
    lattice = default_lattice()
    lattice.add_tag("#packet-length", "int")
    assert "#packet-length" in lattice
    assert lattice.leq("#packet-length", "int")
    assert lattice.leq("#packet-length", "num32")
    lattice.add_element("HWND", ["HANDLE"])
    assert lattice.leq("HWND", "ptr")


def test_unknown_parent_is_created():
    lattice = TypeLattice({"child": ["made_up_parent"]})
    assert "made_up_parent" in lattice
    assert lattice.leq("child", "made_up_parent")


def test_antichain_merges_comparable_elements(lattice):
    antichain = lattice.antichain(["int", "#FileDescriptor", "float"])
    assert "#FileDescriptor" in antichain
    assert "int" not in antichain  # replaced by the more specific element
    assert "float" in antichain


def test_scalar_check(lattice):
    assert lattice.check_scalar("#FileDescriptor", "int")
    assert not lattice.check_scalar("int", "#FileDescriptor")


def test_is_constant(lattice):
    assert lattice.is_constant("int")
    assert lattice.is_constant(TOP)
    assert not lattice.is_constant("some_program_variable")


_elements = st.sampled_from(
    ["int", "uint", "char", "num32", "num8", "float", "ptr", "str", "size_t", "#FileDescriptor", TOP, BOTTOM]
)


@given(_elements, _elements)
def test_join_is_commutative(a, b):
    lattice = default_lattice()
    assert lattice.join(a, b) == lattice.join(b, a)


@given(_elements, _elements)
def test_meet_is_commutative(a, b):
    lattice = default_lattice()
    assert lattice.meet(a, b) == lattice.meet(b, a)


@given(_elements)
def test_join_meet_idempotent(a):
    lattice = default_lattice()
    assert lattice.join(a, a) == a
    assert lattice.meet(a, a) == a


@given(_elements, _elements)
def test_join_is_an_upper_bound(a, b):
    lattice = default_lattice()
    join = lattice.join(a, b)
    assert lattice.leq(a, join)
    assert lattice.leq(b, join)


@given(_elements, _elements)
def test_meet_is_a_lower_bound(a, b):
    lattice = default_lattice()
    meet = lattice.meet(a, b)
    assert lattice.leq(meet, a)
    assert lattice.leq(meet, b)


@given(_elements, _elements)
def test_leq_antisymmetric(a, b):
    lattice = default_lattice()
    if lattice.leq(a, b) and lattice.leq(b, a):
        assert a == b


@given(_elements, _elements, _elements)
def test_leq_transitive(a, b, c):
    lattice = default_lattice()
    if lattice.leq(a, b) and lattice.leq(b, c):
        assert lattice.leq(a, c)
