"""Tests for INFERSHAPES (Theorem 3.1), the ADD/SUB rules (Figure 13), and type schemes."""

import pytest

from repro.core import (
    AddConstraint,
    ConstraintSet,
    DerivedTypeVariable,
    LoadLabel,
    StoreLabel,
    TypeScheme,
    default_lattice,
    field,
    infer_shapes,
    parse_constraints,
    parse_dtv,
)

LOAD = LoadLabel()
STORE = StoreLabel()


def test_subtype_constraints_unify_shapes():
    constraints = parse_constraints(["a <= b", "b <= c"])
    shapes = infer_shapes(constraints, default_lattice())
    assert shapes.lookup(parse_dtv("a")) == shapes.lookup(parse_dtv("c"))


def test_congruence_propagates_to_children():
    constraints = parse_constraints(["a <= b", "a.load.sigma32@0 <= x", "b.load.sigma32@0 <= y"])
    shapes = infer_shapes(constraints, default_lattice())
    assert shapes.lookup(parse_dtv("x")) == shapes.lookup(parse_dtv("y"))


def test_load_store_children_are_identified():
    """The S-POINTER identification: what is stored can be loaded back."""
    constraints = parse_constraints(["v <= p.store.sigma32@0", "p.load.sigma32@0 <= w"])
    shapes = infer_shapes(constraints, default_lattice())
    assert shapes.lookup(parse_dtv("v")) == shapes.lookup(parse_dtv("w"))


def test_capability_paths_match_theorem_3_1():
    constraints = parse_constraints(
        ["f.in_stack0 <= t", "t.load.sigma32@0 <= t", "t.load.sigma32@4 <= int"]
    )
    shapes = infer_shapes(constraints, default_lattice())
    formal = DerivedTypeVariable("f", (parse_dtv("f.in_stack0").labels[0],))
    sketch = shapes.sketch_for(formal)
    assert sketch.accepts([LOAD, field(32, 0), LOAD, field(32, 4)])
    assert sketch.is_recursive()


def test_constant_bounds_recorded_per_class():
    constraints = parse_constraints(["int <= x", "x <= num32", "x <= y"])
    shapes = infer_shapes(constraints, default_lattice())
    lower, upper = shapes.bounds(shapes.lookup(parse_dtv("x")))
    assert lower == "int"
    assert upper == "num32"


def test_scalar_constant_pairs_checked_not_unified():
    constraints = parse_constraints(["int <= num32"])
    shapes = infer_shapes(constraints, default_lattice())
    assert ("int", "num32") in shapes.scalar_checks


def test_capability_queries():
    constraints = parse_constraints(["p.load.sigma32@0 <= x", "y <= p.store.sigma32@4"])
    shapes = infer_shapes(constraints, default_lattice())
    assert shapes.has_capability(parse_dtv("p"), LOAD)
    assert shapes.has_capability(parse_dtv("p"), STORE)
    assert not shapes.has_capability(parse_dtv("x"), LOAD)


def test_add_constraint_marks_and_unifies_pointer_arithmetic():
    constraints = ConstraintSet()
    # z = p + i, followed by a load through z: p must become a pointer with the
    # same structure as z (array indexing).
    constraints.update(parse_constraints(["p.load.sigma32@0 <= w", "i <= int", "z.load.sigma32@0 <= v"]))
    constraints.add(AddConstraint(parse_dtv("p"), parse_dtv("i"), parse_dtv("z")))
    shapes = infer_shapes(constraints, default_lattice())
    assert shapes.is_pointer(shapes.lookup(parse_dtv("p")))
    assert shapes.is_integer(shapes.lookup(parse_dtv("i")))
    assert shapes.lookup(parse_dtv("p")) == shapes.lookup(parse_dtv("z"))
    # and the loaded values coincide
    assert shapes.lookup(parse_dtv("w")) == shapes.lookup(parse_dtv("v"))


def test_sub_constraint_integer_result():
    constraints = ConstraintSet()
    constraints.update(parse_constraints(["a <= int", "b <= int"]))
    from repro.core import SubConstraint

    constraints.add(SubConstraint(parse_dtv("a"), parse_dtv("b"), parse_dtv("c")))
    shapes = infer_shapes(constraints, default_lattice())
    assert shapes.is_integer(shapes.lookup(parse_dtv("c")))


def test_clear_bounds():
    constraints = parse_constraints(["int <= x"])
    shapes = infer_shapes(constraints, default_lattice())
    shapes.clear_bounds()
    lower, upper = shapes.bounds(shapes.lookup(parse_dtv("x")))
    assert lower == "BOTTOM" or lower == "BOTTOM".upper() or lower.upper() == "BOTTOM"


# -- type schemes -------------------------------------------------------------------------


def _scheme():
    constraints = parse_constraints(
        ["f.in_stack0 <= τ0", "τ0.load.sigma32@0 <= τ0", "τ0.load.sigma32@4 <= #FileDescriptor"]
    )
    return TypeScheme(
        proc="f",
        constraints=constraints,
        quantified=frozenset({"τ0"}),
        formal_ins=(parse_dtv("f.in_stack0"),),
    )


def test_scheme_instantiate_renames_everything():
    scheme = _scheme()
    name, constraints = scheme.instantiate("site1")
    assert name == "f$site1"
    bases = {c.left.base for c in constraints} | {c.right.base for c in constraints}
    assert "f" not in bases
    assert "τ0" not in bases
    assert any(base.startswith("τ0$") for base in bases)


def test_scheme_instantiate_as_uses_given_base():
    scheme = _scheme()
    constraints = scheme.instantiate_as("f$0x401000")
    bases = {c.left.base for c in constraints} | {c.right.base for c in constraints}
    assert "f$0x401000" in bases
    assert "f" not in bases


def test_polymorphic_instantiations_do_not_share_existentials():
    scheme = _scheme()
    first = scheme.instantiate_as("f$a")
    second = scheme.instantiate_as("f$b")
    bases_first = {c.left.base for c in first} | {c.right.base for c in first}
    bases_second = {c.left.base for c in second} | {c.right.base for c in second}
    shared_existentials = {
        b for b in bases_first & bases_second if b.startswith("τ")
    }
    assert not shared_existentials


def test_monomorphic_instantiations_share_existentials():
    scheme = _scheme()
    first = scheme.instantiate_monomorphic("f$a")
    second = scheme.instantiate_monomorphic("f$b")
    bases_first = {c.left.base for c in first} | {c.right.base for c in first}
    bases_second = {c.left.base for c in second} | {c.right.base for c in second}
    assert "τ0" in bases_first and "τ0" in bases_second


def test_scheme_str_mentions_quantifier():
    text = str(_scheme())
    assert text.startswith("∀f.")
    assert "τ0" in text
