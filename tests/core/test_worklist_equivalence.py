"""Equivalence of the worklist core against the retained seed reference.

Two oracles, both kept in ``tests/core/naive_reference.py``:

* saturation -- the worklist fixpoint must add exactly the same shortcut
  edges as the seed's whole-graph Gauss-Seidel re-scan, on random constraint
  sets over loads/stores/fields (the alphabet where the lazy S-POINTER rule
  fires) and on the structured examples;
* simplification -- the memoized state traversal must find everything the
  seed's per-source elementary-path DFS found, and anything extra must itself
  be derivable (the DFS under-approximated: its per-path node-visited set
  dropped valid derivations that revisit a node with a different pending
  stack, and its global path budget silently truncated large graphs).
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    ConstraintGraph,
    EdgeKind,
    parse_constraints,
    proves,
    saturate,
    simplify_constraints,
)

from naive_reference import naive_saturate, naive_simplify_constraints


_VARS = ["a", "b", "c", "d", "p", "q"]
_LABELS = ["", ".load", ".store", ".sigma32@0", ".load.sigma32@4", ".store.sigma32@0"]


@st.composite
def constraint_lines(draw):
    lines = []
    for _ in range(draw(st.integers(min_value=1, max_value=7))):
        left = draw(st.sampled_from(_VARS)) + draw(st.sampled_from(_LABELS))
        right = draw(st.sampled_from(_VARS)) + draw(st.sampled_from(_LABELS))
        if left != right:
            lines.append(f"{left} <= {right}")
    return lines


def _saturation_edges(graph):
    return {
        (edge.source, edge.target)
        for edge in graph.edges()
        if edge.kind is EdgeKind.SATURATION
    }


@settings(max_examples=120, deadline=None)
@given(constraint_lines())
def test_worklist_saturation_matches_naive_reference(lines):
    """Both fixpoints add the same shortcut edges (and report the same count)."""
    if not lines:
        return
    constraints = parse_constraints(lines)
    fast_graph = ConstraintGraph(constraints)
    fast_added = saturate(fast_graph)
    slow_graph = ConstraintGraph(constraints)
    slow_added = naive_saturate(slow_graph)
    assert _saturation_edges(fast_graph) == _saturation_edges(slow_graph)
    assert fast_added == slow_added == len(_saturation_edges(fast_graph))


@settings(max_examples=60, deadline=None)
@given(constraint_lines(), st.sets(st.sampled_from(_VARS), min_size=1, max_size=3))
def test_memoized_simplify_superset_of_naive_dfs(lines, interesting):
    """The state traversal finds everything the seed DFS found; extras are sound."""
    if not lines:
        return
    constraints = parse_constraints(lines)
    new_out = set(simplify_constraints(constraints, interesting).subtype)
    old_out = set(naive_simplify_constraints(constraints, interesting).subtype)
    assert old_out <= new_out, f"lost judgements: {old_out - new_out}"
    for extra in new_out - old_out:
        assert proves(constraints, extra), f"unsound extra judgement: {extra}"


def test_figure14_same_shortcuts_both_engines():
    constraints = parse_constraints(["y <= p", "p <= x", "A <= x.store", "y.load <= B"])
    fast_graph = ConstraintGraph(constraints)
    saturate(fast_graph)
    slow_graph = ConstraintGraph(constraints)
    naive_saturate(slow_graph)
    assert _saturation_edges(fast_graph) == _saturation_edges(slow_graph)


def test_worklist_is_idempotent_after_naive():
    """Running the worklist over an already naive-saturated graph adds nothing."""
    constraints = parse_constraints(["y <= p", "p <= x", "A <= x.store", "y.load <= B"])
    graph = ConstraintGraph(constraints)
    naive_saturate(graph)
    assert saturate(graph) == 0
