"""Tests for constraint simplification (section 5) and the deduction rules (Figure 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ConstraintGraph,
    DeductionEngine,
    default_lattice,
    derive_constant_bounds,
    parse_constraint,
    parse_constraints,
    parse_dtv,
    proves,
    saturate,
    simplify_constraints,
)


def test_simplification_eliminates_intermediate_variables():
    constraints = parse_constraints(
        ["f.in_stack0 <= a", "a <= b", "b <= c", "c <= f.out_eax"]
    )
    simplified = simplify_constraints(constraints, {"f"})
    assert parse_constraint("f.in_stack0 <= f.out_eax") in simplified.subtype
    bases = {c.left.base for c in simplified} | {c.right.base for c in simplified}
    assert bases == {"f"}


def test_simplification_keeps_constant_bounds():
    constraints = parse_constraints(["f.in_stack0 <= t", "t <= int", "#SuccessZ <= u", "u <= f.out_eax"])
    simplified = simplify_constraints(constraints, {"f", "int", "#SuccessZ"})
    assert parse_constraint("f.in_stack0 <= int") in simplified.subtype
    assert parse_constraint("#SuccessZ <= f.out_eax") in simplified.subtype


def test_simplification_through_fields():
    constraints = parse_constraints(["f.in_stack0 <= p", "p.load.sigma32@4 <= t", "t <= int"])
    simplified = simplify_constraints(constraints, {"f", "int"})
    assert parse_constraint("f.in_stack0.load.sigma32@4 <= int") in simplified.subtype


def test_simplification_respects_store_contravariance():
    constraints = parse_constraints(["x <= f.in_stack0.store", "int <= x"])
    simplified = simplify_constraints(constraints, {"f", "int"})
    assert parse_constraint("int <= f.in_stack0.store") in simplified.subtype


def test_memcpy_like_scheme_derivation():
    """The memcpy shape of section 2.2: what's loaded from src is stored to dst."""
    constraints = parse_constraints(
        [
            "f.in_stack4 <= src",
            "f.in_stack0 <= dst",
            "src.load.sigma8@0 <= v",
            "v <= dst.store.sigma8@0",
        ]
    )
    simplified = simplify_constraints(constraints, {"f"})
    assert parse_constraint(
        "f.in_stack4.load.sigma8@0 <= f.in_stack0.store.sigma8@0"
    ) in simplified.subtype


def test_proves_negative():
    constraints = parse_constraints(["a <= b"])
    assert not proves(constraints, parse_constraint("b <= a"))


def test_constant_bounds_queries():
    constraints = parse_constraints(
        ["int <= f.out_eax", "f.in_stack0 <= t", "t <= #FileDescriptor"]
    )
    graph = ConstraintGraph(constraints)
    saturate(graph)
    bounds = derive_constant_bounds(graph, default_lattice())
    assert (parse_dtv("f.out_eax"), "lower", "int") in bounds
    assert (parse_dtv("f.in_stack0"), "upper", "#FileDescriptor") in bounds
    # and no bogus reversed judgements
    assert (parse_dtv("f.out_eax"), "upper", "int") not in bounds


def test_constant_bounds_through_pointer():
    constraints = parse_constraints(["int <= p.store.sigma32@0", "p.load.sigma32@0 <= x"])
    graph = ConstraintGraph(constraints)
    saturate(graph)
    bounds = derive_constant_bounds(graph, default_lattice())
    assert (parse_dtv("x"), "lower", "int") in bounds


# -- deduction engine ----------------------------------------------------------------------


def test_deduction_reflexivity_and_transitivity():
    engine = DeductionEngine(parse_constraints(["a <= b", "b <= c"]))
    assert engine.entails(parse_constraint("a <= a"))
    assert engine.entails(parse_constraint("a <= c"))
    assert not engine.entails(parse_constraint("c <= a"))


def test_deduction_field_covariance():
    engine = DeductionEngine(parse_constraints(["a <= b", "b.load <= x"]))
    assert engine.entails(parse_constraint("a.load <= b.load"))


def test_deduction_field_contravariance():
    engine = DeductionEngine(parse_constraints(["a <= b", "x <= b.store"]))
    assert engine.entails(parse_constraint("b.store <= a.store"))


def test_deduction_inherit_capabilities():
    engine = DeductionEngine(parse_constraints(["a <= b", "a.load <= x"]))
    assert engine.entails_var(parse_dtv("b.load"))


def test_deduction_s_pointer():
    engine = DeductionEngine(parse_constraints(["x <= p.store", "p.load <= y"]))
    assert engine.entails(parse_constraint("p.store <= p.load"))
    assert engine.entails(parse_constraint("x <= y"))


# -- agreement between the two engines -----------------------------------------------------

_VARS = ["a", "b", "c", "d"]
_LABELS = ["", ".load", ".store"]


@st.composite
def _random_constraint_set(draw):
    lines = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        left = draw(st.sampled_from(_VARS)) + draw(st.sampled_from(_LABELS))
        right = draw(st.sampled_from(_VARS)) + draw(st.sampled_from(_LABELS))
        if left != right:
            lines.append(f"{left} <= {right}")
    return lines


@settings(max_examples=40, deadline=None)
@given(_random_constraint_set(), st.sampled_from(_VARS), st.sampled_from(_VARS))
def test_saturation_agrees_with_deduction_rules_on_base_judgements(lines, left, right):
    """Soundness/completeness spot-check of the pushdown machinery.

    Every judgement ``left <= right`` between *base* variables derivable by the
    reference deduction engine must be derivable from the saturated graph, and
    vice versa.
    """
    if not lines or left == right:
        return
    constraints = parse_constraints(lines)
    goal = parse_constraint(f"{left} <= {right}")
    engine = DeductionEngine(constraints, max_depth=2)
    assert proves(constraints, goal) == engine.entails(goal)


def test_base_judgement_through_interesting_interior_node():
    """Deterministic regression for the hypothesis counterexample once in ROADMAP.md.

    ``{a.load <= a, b <= a.load} |- b <= a`` by S-TRANS, but every witnessing
    path runs *through* the node of ``a.load`` -- an endpoint-base node, which
    the old membership-in-simplification query refused to cross, so ``proves``
    disagreed with the Figure 3 deduction rules.  The direct ``derives``
    reachability query must find it.
    """
    constraints = parse_constraints(["a.load <= a", "b <= a.load"])
    goal = parse_constraint("b <= a")
    assert DeductionEngine(constraints, max_depth=2).entails(goal)
    assert proves(constraints, goal)
    # The mirrored orientation stays underivable.
    assert not proves(constraints, parse_constraint("a <= b"))
