"""Reference implementations retained from the pre-worklist core (the seed).

These are the algorithms the worklist rewrite replaced, kept verbatim (modulo
defensive ``list(...)`` snapshots around the now-live adjacency lists) as
executable oracles:

* :func:`naive_saturate` -- the original Gauss-Seidel saturation: re-scan
  every node and edge until a whole round runs without change.  The worklist
  saturation must add exactly the same shortcut edges
  (``tests/core/test_worklist_equivalence.py`` property-tests this).
* :func:`naive_simplify_constraints` -- the original per-source recursive DFS
  over elementary paths with a global path budget.  The memoized state
  traversal must derive a superset: everything the DFS found, plus judgements
  the DFS's per-path node-visited set or budget truncation missed (each of
  which must itself be derivable).

They are also what the perf-smoke benchmark measures the new core against, so
the "2x faster than the seed" gate compares both implementations on the same
machine in the same process.
"""

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.core.constraints import ConstraintSet
from repro.core.graph import ConstraintGraph, Edge, EdgeKind, Node
from repro.core.labels import LOAD, STORE, Label, Variance
from repro.core.saturation import saturate
from repro.core.simplify import _PathState, _constraint_from_state, _step


def naive_saturate(graph: ConstraintGraph, max_iterations: int = 10_000) -> int:
    """The seed's saturation: full re-scan Gauss-Seidel fixpoint."""
    reaching: Dict[Node, Set[Tuple[Label, Node]]] = {node: set() for node in graph.nodes}

    # Seed from forget edges.
    for edge in list(graph.edges()):
        if edge.kind is EdgeKind.FORGET and edge.label is not None:
            reaching[edge.target].add((edge.label, edge.source))

    added = 0
    changed = True
    iterations = 0
    while changed:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - defensive guard
            raise RuntimeError("saturation did not converge")
        changed = False

        # Propagate reaching-forget sets along null edges.
        for node in list(graph.nodes):
            for edge in list(graph.out_edges(node)):
                if not edge.is_null:
                    continue
                target_set = reaching.setdefault(edge.target, set())
                source_set = reaching.setdefault(node, set())
                before = len(target_set)
                target_set |= source_set
                if len(target_set) != before:
                    changed = True

        # Lazy S-POINTER: swap pending store/load between the contravariant node
        # and its covariant twin.
        for node in list(graph.nodes):
            if node.variance is not Variance.CONTRAVARIANT:
                continue
            twin = Node(node.dtv, Variance.COVARIANT)
            twin_set = reaching.setdefault(twin, set())
            for label, origin in list(reaching.get(node, ())):
                swapped = None
                if label == STORE:
                    swapped = LOAD
                elif label == LOAD:
                    swapped = STORE
                if swapped is None:
                    continue
                entry = (swapped, origin)
                if entry not in twin_set:
                    twin_set.add(entry)
                    changed = True

        # Discharge pending forgets at recall edges by adding shortcut edges.
        for node in list(graph.nodes):
            for edge in list(graph.out_edges(node)):
                if edge.kind is not EdgeKind.RECALL or edge.label is None:
                    continue
                for label, origin in list(reaching.get(node, ())):
                    if label != edge.label:
                        continue
                    new_edge = Edge(origin, edge.target, EdgeKind.SATURATION)
                    if graph.add_edge(new_edge):
                        reaching.setdefault(edge.target, set())
                        added += 1
                        changed = True
    return added


def naive_simplify_constraints(
    constraints: ConstraintSet,
    interesting: Iterable[str],
    graph: Optional[ConstraintGraph] = None,
    max_label_depth: int = 6,
    max_paths: int = 200_000,
) -> ConstraintSet:
    """The seed's simplification: per-source recursive elementary-path DFS."""
    interesting_bases = set(interesting)
    if graph is None:
        graph = ConstraintGraph(constraints)
        saturate(graph)

    output = ConstraintSet()
    start_nodes = [
        node
        for node in sorted(graph.nodes, key=str)
        if node.dtv.base in interesting_bases
    ]

    budget = [max_paths]

    def explore(source: Node, state: _PathState, visited: Set[Node]) -> None:
        if budget[0] <= 0:
            return
        for edge in list(graph.out_edges(state.node)):
            next_state = _step(state, edge)
            if next_state is None:
                continue
            if len(next_state.alpha) > max_label_depth:
                continue
            if len(next_state.beta) > max_label_depth:
                continue
            target = next_state.node
            if target.dtv.base in interesting_bases:
                budget[0] -= 1
                constraint = _constraint_from_state(source, next_state)
                if constraint is not None:
                    output.add(constraint)
                continue  # elementary proofs stop at interesting variables
            if target in visited:
                continue
            visited.add(target)
            explore(source, next_state, visited)
            visited.discard(target)

    for source in start_nodes:
        initial = _PathState(source, (), ())
        explore(source, initial, {source})

    return output
