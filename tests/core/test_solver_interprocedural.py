"""Tests for the SCC-based solver: polymorphism, recursion, refinement (Algorithms F.1-F.3)."""

import pytest

from repro.core import (
    Callsite,
    ConstraintSet,
    DerivedTypeVariable,
    LoadLabel,
    ProcedureTypingInput,
    Solver,
    SolverConfig,
    default_lattice,
    field,
    in_label,
    out_label,
    parse_constraints,
    parse_dtv,
    tarjan_sccs,
)

LOAD = LoadLabel()


def _proc(name, lines, ins=(), outs=(), callsites=()):
    return ProcedureTypingInput(
        name=name,
        constraints=parse_constraints(lines),
        formal_ins=tuple(DerivedTypeVariable(name, (in_label(loc),)) for loc in ins),
        formal_outs=tuple(DerivedTypeVariable(name, (out_label(loc),)) for loc in outs),
        callsites=tuple(callsites),
    )


def test_tarjan_scc_order_is_callee_first():
    edges = {"main": {"helper"}, "helper": {"leaf"}, "leaf": set()}
    order = tarjan_sccs(edges)
    flattened = [n for scc in order for n in scc]
    assert flattened.index("leaf") < flattened.index("helper") < flattened.index("main")


def test_tarjan_groups_mutual_recursion():
    edges = {"even": {"odd"}, "odd": {"even"}, "main": {"even"}}
    order = tarjan_sccs(edges)
    assert any(set(scc) == {"even", "odd"} for scc in order)


def test_callee_tag_flows_to_caller():
    """A #FileDescriptor discovered in a callee propagates to the caller's formal."""
    callee = _proc(
        "get_fd",
        ["get_fd.in_stack0.load.sigma32@4 <= tmp", "tmp <= #FileDescriptor", "tmp <= get_fd.out_eax"],
        ins=["stack0"],
        outs=["eax"],
    )
    caller = _proc(
        "caller",
        [
            "caller.in_stack0 <= get_fd$1.in_stack0",
            "get_fd$1.out_eax <= caller.out_eax",
        ],
        ins=["stack0"],
        outs=["eax"],
        callsites=[Callsite("get_fd", "get_fd$1")],
    )
    results = Solver(default_lattice()).solve_program({"get_fd": callee, "caller": caller})
    out_sketch = results["caller"].formal_out_sketches[parse_dtv("caller.out_eax")]
    root = out_sketch.node(out_sketch.root)
    assert "#FileDescriptor" in (root.lower, root.upper)
    in_sketch = results["caller"].formal_in_sketches[parse_dtv("caller.in_stack0")]
    node = in_sketch.follow([LOAD, field(32, 4)])
    assert node is not None


def test_polymorphic_callsites_do_not_interfere():
    """Two calls to an identity-like function keep their types separate (let-polymorphism)."""
    identity = _proc(
        "id",
        ["id.in_stack0 <= id.out_eax"],
        ins=["stack0"],
        outs=["eax"],
    )
    caller = _proc(
        "caller",
        [
            "int <= id$a.in_stack0",
            "id$a.out_eax <= x",
            "str <= id$b.in_stack0",
            "id$b.out_eax <= y",
            "x <= caller.out_eax",
        ],
        outs=["eax"],
        callsites=[Callsite("id", "id$a"), Callsite("id", "id$b")],
    )
    solver = Solver(default_lattice())
    results = solver.solve_program({"id": identity, "caller": caller})
    out = results["caller"].formal_out_sketches[parse_dtv("caller.out_eax")]
    # x should be int; with monomorphic treatment it would be joined with str.
    assert out.node(out.root).lower == "int"


def test_monomorphic_configuration_merges_callsites():
    identity = _proc("id", ["id.in_stack0 <= id.out_eax"], ins=["stack0"], outs=["eax"])
    caller = _proc(
        "caller",
        [
            "int <= id$a.in_stack0",
            "id$a.out_eax <= x",
            "str <= id$b.in_stack0",
            "x <= caller.out_eax",
        ],
        outs=["eax"],
        callsites=[Callsite("id", "id$a"), Callsite("id", "id$b")],
    )
    config = SolverConfig(polymorphic=False, refine_parameters=False)
    results = Solver(default_lattice(), config=config).solve_program(
        {"id": identity, "caller": caller}
    )
    out = results["caller"].formal_out_sketches[parse_dtv("caller.out_eax")]
    # both callsites collapse onto one type: join(int, str) = TOP in this lattice
    assert out.node(out.root).lower in ("TOP", "num32", "int")


def test_recursive_procedure_gets_recursive_sketch():
    walker = _proc(
        "walk",
        [
            "walk.in_stack0.load.sigma32@0 <= next",
            "next <= walk$self.in_stack0",
            "walk$self.out_eax <= walk.out_eax",
            "walk.in_stack0.load.sigma32@4 <= walk.out_eax",
            "walk.out_eax <= int",
        ],
        ins=["stack0"],
        outs=["eax"],
        callsites=[Callsite("walk", "walk$self")],
    )
    results = Solver(default_lattice()).solve_program({"walk": walker})
    sketch = results["walk"].formal_in_sketches[parse_dtv("walk.in_stack0")]
    assert sketch.is_recursive()


def test_extern_scheme_used_when_provided():
    from repro.typegen.externs import extern_schemes

    caller = _proc(
        "caller",
        ["caller.in_stack0 <= close$1.in_stack0", "close$1.out_eax <= caller.out_eax"],
        ins=["stack0"],
        outs=["eax"],
        callsites=[Callsite("close", "close$1")],
    )
    solver = Solver(default_lattice(), extern_schemes())
    results = solver.solve_program({"caller": caller})
    in_sketch = results["caller"].formal_in_sketches[parse_dtv("caller.in_stack0")]
    assert in_sketch.node(in_sketch.root).upper == "#FileDescriptor"


def test_unknown_extern_is_harmless():
    caller = _proc(
        "caller",
        ["caller.in_stack0 <= mystery$1.in_stack0"],
        ins=["stack0"],
        callsites=[Callsite("mystery", "mystery$1")],
    )
    results = Solver(default_lattice()).solve_program({"caller": caller})
    assert "caller" in results


def test_solver_stats_populated():
    proc = _proc("f", ["f.in_stack0 <= f.out_eax"], ins=["stack0"], outs=["eax"])
    solver = Solver(default_lattice())
    solver.solve_program({"f": proc})
    assert solver.stats["procedures"] == 1
    assert solver.stats["constraints"] == 1


def test_scheme_roundtrips_through_instantiation():
    """A callee scheme instantiated in a fresh constraint set reproduces its capabilities."""
    callee = _proc(
        "get",
        ["get.in_stack0.load.sigma32@0 <= get.out_eax"],
        ins=["stack0"],
        outs=["eax"],
    )
    results = Solver(default_lattice()).solve_program({"get": callee})
    scheme = results["get"].scheme
    instantiated = scheme.instantiate_as("get$99")
    from repro.core import infer_shapes

    shapes = infer_shapes(instantiated, default_lattice())
    formal = parse_dtv("get$99.in_stack0")
    assert shapes.lookup(formal) is not None
    assert shapes.sketch_for(formal).accepts([LOAD, field(32, 0)])
