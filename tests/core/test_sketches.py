"""Tests for sketches and their lattice structure (Definition 3.5, Figure 18)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import BOTTOM, TOP, LoadLabel, Sketch, StoreLabel, default_lattice, field, top_sketch
from repro.core.labels import Label

LOAD = LoadLabel()
STORE = StoreLabel()
F0 = field(32, 0)
F4 = field(32, 4)


def _lattice():
    return default_lattice()


def _linked_list_sketch():
    """The Figure 16-style sketch: load.sigma32@0 loops, load.sigma32@4 is an int."""
    sketch = Sketch(_lattice())
    pointee = sketch.add_node()
    sketch.add_edge(sketch.root, LOAD, pointee)
    sketch.add_edge(pointee, F0, sketch.root)
    handle = sketch.add_node()
    sketch.add_edge(pointee, F4, handle)
    sketch.nodes[handle].upper = "#FileDescriptor"
    return sketch


def test_add_path_and_accepts():
    sketch = Sketch(_lattice())
    node = sketch.add_path([LOAD, F4])
    assert sketch.accepts([LOAD])
    assert sketch.accepts([LOAD, F4])
    assert not sketch.accepts([STORE])
    assert sketch.follow([LOAD, F4]) == node


def test_recursive_sketch_detection():
    sketch = _linked_list_sketch()
    assert sketch.is_recursive()
    flat = Sketch(_lattice())
    flat.add_path([LOAD, F0])
    assert not flat.is_recursive()


def test_recursive_sketch_accepts_unbounded_paths():
    sketch = _linked_list_sketch()
    path = [LOAD, F0] * 5 + [LOAD, F4]
    assert sketch.accepts(path)


def test_display_label_uses_variance():
    sketch = Sketch(_lattice())
    out = sketch.add_path([field(32, 0)])
    sketch.nodes[out].lower = "int"
    sketch.nodes[out].upper = "num32"
    # covariant path -> join of lower bounds
    assert sketch.display_label([field(32, 0)]) == "int"
    # contravariant path -> meet of upper bounds
    contra = sketch.add_path([STORE])
    sketch.nodes[contra].upper = "#FileDescriptor"
    assert sketch.display_label([STORE]) == "#FileDescriptor"


def test_apply_bounds():
    sketch = Sketch(_lattice())
    sketch.apply_lower(sketch.root, "int")
    sketch.apply_lower(sketch.root, "#SuccessZ")
    sketch.apply_upper(sketch.root, "num32")
    node = sketch.node(sketch.root)
    assert node.lower == "int"
    assert node.upper == "num32"


def test_meet_is_union_of_capabilities():
    a = Sketch(_lattice())
    a.add_path([LOAD])
    b = Sketch(_lattice())
    b.add_path([STORE])
    met = a.meet(b)
    assert met.accepts([LOAD])
    assert met.accepts([STORE])


def test_join_is_intersection_of_capabilities():
    a = Sketch(_lattice())
    a.add_path([LOAD, F0])
    a.add_path([STORE])
    b = Sketch(_lattice())
    b.add_path([LOAD, F0])
    joined = a.join(b)
    assert joined.accepts([LOAD, F0])
    assert not joined.accepts([STORE])


def test_meet_and_join_node_labels():
    a = Sketch(_lattice())
    a.nodes[a.root].lower = "int"
    b = Sketch(_lattice())
    b.nodes[b.root].lower = "#FileDescriptor"
    met = a.meet(b)
    joined = a.join(b)
    # covariant root: meet of sketches meets the labels, join joins them
    assert met.nodes[met.root].lower == "#FileDescriptor"
    assert joined.nodes[joined.root].lower == "int"


def test_leq_with_capabilities():
    more = Sketch(_lattice())
    more.add_path([LOAD, F0])
    more.add_path([STORE])
    less = Sketch(_lattice())
    less.add_path([LOAD, F0])
    # more capable sketches are lower in the order
    assert more.leq(less)
    assert not less.leq(more)


def test_top_sketch_is_greatest():
    top = top_sketch(_lattice())
    other = _linked_list_sketch()
    assert other.leq(top)


def test_copy_is_independent():
    sketch = _linked_list_sketch()
    clone = sketch.copy()
    assert clone.accepts([LOAD, F0, LOAD])
    clone.nodes[clone.root].lower = "int"
    assert sketch.nodes[sketch.root].lower == BOTTOM


def test_paths_enumeration_bounded():
    sketch = _linked_list_sketch()
    words = [w for w, _ in sketch.paths(max_depth=3)]
    assert () in words
    assert all(len(w) <= 3 for w in words)


def test_to_dot_renders():
    dot = _linked_list_sketch().to_dot("example")
    assert dot.startswith("digraph example")
    assert "load" in dot


# -- property tests -----------------------------------------------------------------

_label_pool = [LOAD, STORE, F0, F4]


def _random_sketch(draw_paths):
    sketch = Sketch(_lattice())
    for path in draw_paths:
        sketch.add_path(path)
    return sketch


_paths = st.lists(st.lists(st.sampled_from(_label_pool), max_size=3), max_size=4)


@given(_paths, _paths)
def test_meet_accepts_everything_either_operand_accepts(paths_a, paths_b):
    a, b = _random_sketch(paths_a), _random_sketch(paths_b)
    met = a.meet(b)
    for path in paths_a + paths_b:
        assert met.accepts(path)


@given(_paths, _paths)
def test_join_accepts_only_common_paths(paths_a, paths_b):
    a, b = _random_sketch(paths_a), _random_sketch(paths_b)
    joined = a.join(b)
    for path in paths_a:
        assert joined.accepts(path) == b.accepts(path)


@given(_paths)
def test_meet_idempotent_on_language(paths):
    sketch = _random_sketch(paths)
    met = sketch.meet(sketch)
    for path in paths:
        assert met.accepts(path)
    assert sketch.leq(met) or met.leq(sketch)


@given(_paths, _paths)
def test_meet_is_a_lower_bound_in_sketch_order(paths_a, paths_b):
    a, b = _random_sketch(paths_a), _random_sketch(paths_b)
    met = a.meet(b)
    assert met.leq(a)
    assert met.leq(b)
