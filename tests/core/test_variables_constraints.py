"""Tests for derived type variables and constraint sets (Definitions 3.1, 3.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    AddConstraint,
    ConstraintSet,
    DerivedTypeVariable,
    LoadLabel,
    StoreLabel,
    SubtypeConstraint,
    field,
    fresh_var,
    in_label,
    out_label,
    parse_constraint,
    parse_constraints,
    parse_dtv,
)
from repro.core.labels import FieldLabel


def test_dtv_construction_and_str():
    dtv = DerivedTypeVariable("F", (in_label("stack0"), LoadLabel(), field(32, 4)))
    assert str(dtv) == "F.in_stack0.load.sigma32@4"
    assert dtv.base == "F"
    assert dtv.depth == 3
    assert dtv.last_label == field(32, 4)


def test_dtv_prefix_chain():
    dtv = parse_dtv("F.load.sigma32@0")
    prefixes = list(dtv.prefixes())
    assert [str(p) for p in prefixes] == ["F", "F.load"]
    assert dtv.prefix == parse_dtv("F.load")
    assert parse_dtv("F").prefix is None


def test_dtv_with_label_and_base():
    dtv = parse_dtv("x")
    extended = dtv.with_label(LoadLabel()).with_label(field(32, 8))
    assert str(extended) == "x.load.sigma32@8"
    assert str(extended.with_base("y")) == "y.load.sigma32@8"
    assert extended.base_var == parse_dtv("x")


def test_parse_dtv_roundtrip():
    for text in ("x", "F.in_stack0", "p.load.sigma32@4", "f.out_eax", "q.store.sigma8@0"):
        assert str(parse_dtv(text)) == text


def test_fresh_vars_are_distinct():
    assert fresh_var() != fresh_var()


def test_parse_constraint_forms():
    c = parse_constraint("a.load <= b")
    assert c == SubtypeConstraint(parse_dtv("a.load"), parse_dtv("b"))
    # Unicode forms used in the paper are accepted too.
    assert parse_constraint("a ⊑ b") == parse_constraint("a <= b")
    assert parse_constraint("a <: b") == parse_constraint("a <= b")
    with pytest.raises(ValueError):
        parse_constraint("a b")


def test_constraint_set_behaves_like_a_set():
    cs = parse_constraints(["a <= b", "b <= c", "a <= b"])
    assert len(cs) == 2
    assert parse_constraint("a <= b") in cs
    assert parse_constraint("c <= a") not in cs
    texts = {str(c) for c in cs}
    assert texts == {"a <= b", "b <= c"}


def test_constraint_set_derived_type_variables_include_prefixes():
    cs = parse_constraints(["x.load.sigma32@4 <= y"])
    dtvs = {str(d) for d in cs.derived_type_variables()}
    assert dtvs == {"x", "x.load", "x.load.sigma32@4", "y"}
    assert cs.base_variables() == {"x", "y"}


def test_constraint_set_union_and_update():
    a = parse_constraints(["a <= b"])
    b = parse_constraints(["b <= c"])
    union = a.union(b)
    assert len(union) == 2
    a.update(b)
    assert a == union


def test_substitution_renames_bases_only():
    cs = parse_constraints(["f.in_stack0 <= t", "t.load <= f.out_eax"])
    renamed = cs.substitute({"f": "f$1", "t": "t$1"})
    texts = {str(c) for c in renamed}
    assert texts == {"f$1.in_stack0 <= t$1", "t$1.load <= f$1.out_eax"}


def test_additive_constraints_tracked_separately():
    cs = ConstraintSet()
    cs.add(AddConstraint(parse_dtv("a"), parse_dtv("b"), parse_dtv("c")))
    assert len(cs) == 0
    assert len(cs.additive) == 1
    dtvs = {str(d) for d in cs.derived_type_variables()}
    assert dtvs == {"a", "b", "c"}


def test_constraints_mentioning():
    cs = parse_constraints(["a <= b", "b.load <= c"])
    assert len(cs.constraints_mentioning("b")) == 2
    assert len(cs.constraints_mentioning("c")) == 1
    assert cs.constraints_mentioning("zzz") == []


_base_names = st.sampled_from(["a", "b", "c", "f", "g"])
_labels = st.lists(
    st.sampled_from([LoadLabel(), StoreLabel(), FieldLabel(32, 0), FieldLabel(32, 4), in_label("stack0")]),
    max_size=4,
)


@given(_base_names, _labels)
def test_dtv_str_parse_roundtrip_property(base, labels):
    dtv = DerivedTypeVariable(base, tuple(labels))
    assert parse_dtv(str(dtv)) == dtv


@given(_base_names, _labels, _base_names, _labels)
def test_constraint_str_parse_roundtrip_property(base_l, labels_l, base_r, labels_r):
    constraint = SubtypeConstraint(
        DerivedTypeVariable(base_l, tuple(labels_l)),
        DerivedTypeVariable(base_r, tuple(labels_r)),
    )
    assert parse_constraint(str(constraint)) == constraint


@given(st.lists(st.tuples(_base_names, _base_names), max_size=10))
def test_constraint_set_idempotent_union(pairs):
    cs = ConstraintSet()
    for left, right in pairs:
        cs.add_subtype(parse_dtv(left), parse_dtv(right))
    assert cs.union(cs) == cs
    assert len(cs) <= len(pairs)


# -- parse/str round trip over the full label grammar ---------------------------------
#
# The narrow-pool property above never exercised unusual locations; widening it
# falsified three label words the grammar could construct but not re-parse:
# empty locations (``in_``), locations containing ``.`` (str() emits a word
# that parse_dtv splits into bogus extra labels) and negative field sizes
# (``sigma-8@0``).  Construction now rejects all three, so every constructible
# label word round-trips.

_locations = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_@$#-",
    min_size=1,
    max_size=8,
)
_any_label = st.one_of(
    st.just(LoadLabel()),
    st.just(StoreLabel()),
    st.builds(in_label, _locations),
    st.builds(out_label, _locations),
    st.builds(
        FieldLabel,
        st.integers(min_value=0, max_value=512),
        st.integers(min_value=-1024, max_value=1024),
    ),
)


@given(_base_names, st.lists(_any_label, max_size=5))
def test_dtv_roundtrip_over_arbitrary_constructible_labels(base, labels):
    dtv = DerivedTypeVariable(base, tuple(labels))
    assert parse_dtv(str(dtv)) == dtv


def test_unroundtrippable_label_words_rejected_at_construction():
    from repro.core.labels import InLabel, OutLabel

    for bad_location in ("", "stack0.load", "a.b", "a b", "x\ty", " "):
        with pytest.raises(ValueError):
            InLabel(bad_location)
        with pytest.raises(ValueError):
            OutLabel(bad_location)
    with pytest.raises(ValueError):
        FieldLabel(-8, 0)


def test_unparseable_label_text_still_rejected():
    from repro.core import parse_label

    for bad_text in ("in_", "out_", "sigma-8@0", "sigma32@", "bogus"):
        with pytest.raises(ValueError):
            parse_label(bad_text)
