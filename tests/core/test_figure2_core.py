"""End-to-end core test on the paper's running example (Figure 2 / Figure 20).

The constraint set below is the one obtained by abstract interpretation of the
``close_last`` disassembly (Figure 20), transcribed into this reproduction's
naming scheme.  Solving it must recover:

* a recursive sketch for the ``list`` parameter (a linked list),
* the ``#FileDescriptor`` purpose for the ``handle`` field,
* the ``int`` / ``#SuccessZ`` return value,
* a ``const struct_0 *`` C type for the parameter,
* a type scheme equivalent to the one shown in Figure 2.
"""

import pytest

from repro.core import (
    DerivedTypeVariable,
    PointerType,
    ProcedureTypingInput,
    Solver,
    StructRef,
    StructType,
    TypeDisplay,
    TypedefType,
    Variance,
    default_lattice,
    field,
    in_label,
    infer_shapes,
    out_label,
    parse_constraints,
    parse_dtv,
)

FIGURE_20 = [
    # formal-in flows into the initial stack slot, then into edx
    "close_last.in_stack0 <= AR_close_last_INITIAL_4",
    "AR_close_last_INITIAL_4 <= EDX_8048420",
    # the loop: eax := [edx]; edx := eax
    "EDX_8048420 <= unknown_loc_106",
    "EDX_8048430 <= unknown_loc_106",
    "unknown_loc_106.load.sigma32@0 <= EAX_8048432",
    "EAX_8048432 <= EDX_8048430",
    # the handle load: eax := [edx + 4]
    "EDX_8048420 <= unknown_loc_111",
    "EDX_8048430 <= unknown_loc_111",
    "unknown_loc_111.load.sigma32@4 <= EAX_8048438",
    # re-use of the argument slot, then the tail call to close
    "EAX_8048438 <= AR_close_last_804843B_4",
    "AR_close_last_804843B_4 <= close$804843F.in_stack0",
    "close$804843F.in_stack0 <= #FileDescriptor",
    "close$804843F.in_stack0 <= int",
    # close's return value becomes close_last's return value
    "close$804843F.out_eax <= EAX_804843F",
    "int <= close$804843F.out_eax",
    "#SuccessZ <= close$804843F.out_eax",
    "EAX_804843F <= close_last.out_eax",
]

IN_STACK0 = DerivedTypeVariable("close_last", (in_label("stack0"),))
OUT_EAX = DerivedTypeVariable("close_last", (out_label("eax"),))


@pytest.fixture(scope="module")
def result():
    constraints = parse_constraints(FIGURE_20)
    proc = ProcedureTypingInput(
        name="close_last",
        constraints=constraints,
        formal_ins=(IN_STACK0,),
        formal_outs=(OUT_EAX,),
    )
    solver = Solver(default_lattice())
    return solver.solve_single(proc)


def test_parameter_sketch_is_recursive(result):
    sketch = result.formal_in_sketches[IN_STACK0]
    assert sketch.is_recursive()
    # The next pointer: following load.sigma32@0 returns to a node with the
    # same capabilities (the same automaton state, in fact).
    first = sketch.follow([parse_dtv("x.load").labels[0], field(32, 0)])
    assert first is not None
    assert sketch.follow(
        [parse_dtv("x.load").labels[0], field(32, 0)] * 3
    ) == first or sketch.is_recursive()


def test_handle_field_purpose(result):
    sketch = result.formal_in_sketches[IN_STACK0]
    load = parse_dtv("x.load").labels[0]
    node = sketch.follow([load, field(32, 4)])
    assert node is not None
    data = sketch.node(node)
    # contravariant position: the meet of upper bounds is displayed
    assert data.upper == "#FileDescriptor"


def test_return_value_bounds(result):
    sketch = result.formal_out_sketches[OUT_EAX]
    data = sketch.node(sketch.root)
    # int join #SuccessZ = int in the default lattice
    assert data.lower == "int"


def test_no_store_capability_on_list_parameter(result):
    """The list is only read, never written: the parameter should be const."""
    sketch = result.formal_in_sketches[IN_STACK0]
    load = parse_dtv("x.load").labels[0]
    store = parse_dtv("x.store").labels[0]
    assert sketch.follow([load]) is not None
    assert sketch.follow([store]) is None


def test_displayed_c_type(result):
    display = TypeDisplay(default_lattice())
    sketch = result.formal_in_sketches[IN_STACK0]
    ctype = display.ctype_of_sketch(sketch, Variance.CONTRAVARIANT)
    assert isinstance(ctype, PointerType)
    assert ctype.const, "read-only pointer parameter should be const"
    pointee = ctype.pointee
    assert isinstance(pointee, (StructType, StructRef))
    if isinstance(pointee, StructType):
        offsets = {f.offset for f in pointee.fields}
        assert offsets == {0, 4}
        field0 = pointee.field_at(0).ctype
        field4 = pointee.field_at(4).ctype
        assert isinstance(field0, PointerType)
        assert isinstance(field0.pointee, (StructRef, StructType))
        assert isinstance(field4, TypedefType)
        assert field4.name == "#FileDescriptor"


def test_scheme_roundtrip(result):
    """Re-solving the serialized scheme reproduces the recursive structure."""
    scheme = result.scheme
    assert scheme.proc == "close_last"
    assert len(scheme.constraints) > 0
    lattice = default_lattice()
    shapes = infer_shapes(scheme.constraints, lattice)
    sketch = shapes.sketch_for(IN_STACK0)
    load = parse_dtv("x.load").labels[0]
    assert sketch.follow([load, field(32, 0), load]) is not None
    node = sketch.follow([load, field(32, 4)])
    assert node is not None
    assert sketch.node(node).upper == "#FileDescriptor"


def test_scheme_mentions_formals(result):
    text = str(result.scheme)
    assert "close_last.in_stack0" in text
    assert "close_last.out_eax" in text
