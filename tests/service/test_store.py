"""Summary store: serialization round trips, LRU eviction, disk persistence."""

import json
import os

import pytest

from repro import analyze_program
from repro.core.lattice import default_lattice
from repro.core.schemes import TypeScheme
from repro.core.sketches import Sketch
from repro.core.solver import SolverConfig
from repro.frontend import compile_c
from repro.service.store import (
    SCCSummary,
    SummaryStore,
    environment_fingerprint,
    procedure_fingerprint,
    program_fingerprints,
    scc_summary_keys,
    serialize_summary,
    deserialize_summary,
    summarize_scc,
)
from repro.typegen.externs import ensure_lattice_tags, standard_externs

ALLOCATOR = """
struct node { struct node * next; int value; };

struct node * push_front(struct node * head, int value) {
    struct node * n;
    n = (struct node *) malloc(sizeof(struct node));
    n->value = value;
    n->next = head;
    return n;
}

int total(const struct node * head) {
    int sum;
    sum = 0;
    while (head != NULL) {
        sum = sum + head->value;
        head = head->next;
    }
    return sum;
}
"""


@pytest.fixture(scope="module")
def analyzed():
    return analyze_program(compile_c(ALLOCATOR).program)


def test_scheme_json_round_trip(analyzed):
    for name, fn in analyzed.functions.items():
        scheme = fn.scheme
        payload = json.loads(json.dumps(scheme.to_json()))
        rebuilt = TypeScheme.from_json(payload)
        assert str(rebuilt) == str(scheme)
        assert rebuilt.quantified == scheme.quantified
        assert rebuilt.formal_ins == scheme.formal_ins
        assert rebuilt.formal_outs == scheme.formal_outs


def test_sketch_json_round_trip(analyzed):
    for fn in analyzed.functions.values():
        for sketch in list(fn.result.formal_in_sketches.values()) + list(
            fn.result.formal_out_sketches.values()
        ):
            payload = json.loads(json.dumps(sketch.to_json()))
            rebuilt = Sketch.from_json(payload, sketch.lattice)
            assert str(rebuilt) == str(sketch)
            # Renumbering is canonical: a second round trip is a fixpoint.
            assert rebuilt.to_json() == Sketch.from_json(rebuilt.to_json(), sketch.lattice).to_json()


def test_recursive_sketch_round_trip(analyzed):
    recursive = [
        sketch
        for fn in analyzed.functions.values()
        for sketch in fn.result.formal_in_sketches.values()
        if sketch.is_recursive()
    ]
    assert recursive, "the linked-list workload should produce a recursive sketch"
    for sketch in recursive:
        rebuilt = Sketch.from_json(sketch.to_json(), sketch.lattice)
        assert rebuilt.is_recursive()
        assert str(rebuilt) == str(sketch)


def test_fingerprints_are_content_hashes():
    program = compile_c(ALLOCATOR).program
    fingerprints = program_fingerprints(program)
    assert set(fingerprints) == set(program.procedures)
    again = program_fingerprints(compile_c(ALLOCATOR).program)
    assert fingerprints == again  # deterministic across compilations

    lattice = ensure_lattice_tags(default_lattice())
    config = SolverConfig()
    assert environment_fingerprint(lattice, standard_externs(), config) == (
        environment_fingerprint(lattice, standard_externs(), config)
    )
    # The solver configuration is part of the environment.
    assert environment_fingerprint(lattice, standard_externs(), config) != (
        environment_fingerprint(lattice, standard_externs(), SolverConfig(polymorphic=False))
    )


def test_scc_keys_invalidate_transitively():
    program = compile_c(ALLOCATOR).program
    edges = {"total": set(), "push_front": {"total"}}
    sccs = [["total"], ["push_front"]]
    fingerprints = program_fingerprints(program)
    keys = scc_summary_keys(sccs, edges, fingerprints, "env")

    # Changing the callee's fingerprint changes both keys.
    changed = dict(fingerprints)
    changed["total"] = "0" * 64
    keys2 = scc_summary_keys(sccs, edges, changed, "env")
    assert keys2[("total",)] != keys[("total",)]
    assert keys2[("push_front",)] != keys[("push_front",)]

    # Changing the caller's fingerprint leaves the callee's key alone.
    changed = dict(fingerprints)
    changed["push_front"] = "0" * 64
    keys3 = scc_summary_keys(sccs, edges, changed, "env")
    assert keys3[("total",)] == keys[("total",)]
    assert keys3[("push_front",)] != keys[("push_front",)]


def _summary_for(analyzed, name):
    results = {name: analyzed.functions[name].result}
    return summarize_scc([name], results, {})


def test_summary_round_trip(analyzed):
    lattice = analyzed.display.lattice
    summary = _summary_for(analyzed, "total")
    payload = json.loads(json.dumps(serialize_summary(summary)))
    rebuilt = deserialize_summary(payload, lattice)
    assert rebuilt.members == summary.members
    original = summary.procedures["total"]
    restored = rebuilt.procedures["total"]
    assert str(restored.scheme) == str(original.scheme)
    assert set(restored.formal_ins) == set(original.formal_ins)
    for dtv, sketch in original.formal_ins.items():
        assert str(restored.formal_ins[dtv]) == str(sketch)


def test_lru_eviction(analyzed):
    lattice = analyzed.display.lattice
    store = SummaryStore(capacity=2)
    summary = _summary_for(analyzed, "total")
    store.put("k1", summary)
    store.put("k2", summary)
    store.put("k3", summary)  # evicts k1
    assert store.stats.evictions == 1
    assert store.get("k1", lattice) is None
    assert store.get("k2", lattice) is not None
    # k2 is now most-recent; adding k4 evicts k3.
    store.put("k4", summary)
    assert store.get("k3", lattice) is None
    assert store.get("k2", lattice) is not None
    assert store.stats.hits == 2 and store.stats.misses == 2


def test_disk_tier_persists_across_stores(tmp_path, analyzed):
    lattice = analyzed.display.lattice
    summary = _summary_for(analyzed, "total")
    first = SummaryStore(capacity=8, cache_dir=str(tmp_path))
    first.put("diskkey", summary)

    second = SummaryStore(capacity=8, cache_dir=str(tmp_path))
    assert "diskkey" in second
    loaded = second.get("diskkey", lattice)
    assert loaded is not None
    assert str(loaded.procedures["total"].scheme) == str(summary.procedures["total"].scheme)
    assert second.stats.disk_hits == 1
    # Promoted to memory: a second get is a memory hit.
    second.get("diskkey", lattice)
    assert second.stats.memory_hits == 1


def test_procedure_fingerprint_tracks_content():
    program = compile_c(ALLOCATOR).program
    total = program.procedure("total")
    before = procedure_fingerprint(total)
    from repro.ir.instructions import Nop

    total.instructions.append(Nop())
    assert procedure_fingerprint(total) != before


# ---------------------------------------------------------------------------
# Disk-tier hardening: atomic writes, quarantine, shared directories
# ---------------------------------------------------------------------------


def test_corrupt_disk_entry_is_quarantined_not_raised(tmp_path, analyzed):
    lattice = analyzed.display.lattice
    summary = _summary_for(analyzed, "total")
    store = SummaryStore(capacity=8, cache_dir=str(tmp_path))
    store.put("goodkey", summary)
    path = store._disk_path("goodkey")

    # Truncate the entry mid-payload, as a killed writer without atomic
    # replace would have.
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"format": "retypd-summary-v1", "members": ["tot')

    fresh = SummaryStore(capacity=8, cache_dir=str(tmp_path))
    assert fresh.get("goodkey", lattice) is None  # tolerated, not raised
    assert fresh.stats.quarantined == 1
    assert fresh.stats.misses == 1
    assert not os.path.exists(path), "corrupt entry must be moved aside"
    assert os.path.exists(path + ".corrupt"), "quarantined copy kept for forensics"

    # The key is writable again and round-trips.
    fresh.put("goodkey", summary)
    fresh.clear()
    assert fresh.get("goodkey", lattice) is not None


def test_wrong_format_disk_entry_is_quarantined(tmp_path, analyzed):
    lattice = analyzed.display.lattice
    store = SummaryStore(capacity=8, cache_dir=str(tmp_path))
    path = store._disk_path("alienkey")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"format": "some-other-tool-v9", "members": []}, handle)
    assert store.get("alienkey", lattice) is None
    assert store.stats.quarantined == 1
    assert os.path.exists(path + ".corrupt")


def test_non_object_disk_entry_is_quarantined(tmp_path, analyzed):
    lattice = analyzed.display.lattice
    store = SummaryStore(capacity=8, cache_dir=str(tmp_path))
    path = store._disk_path("listkey")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("[1, 2, 3]")
    assert store.get("listkey", lattice) is None
    assert store.stats.quarantined == 1


def test_disk_writes_leave_no_temp_droppings(tmp_path, analyzed):
    store = SummaryStore(capacity=8, cache_dir=str(tmp_path))
    summary = _summary_for(analyzed, "total")
    for i in range(5):
        store.put(f"key{i}", summary)
    leftovers = [
        name
        for root, _, names in os.walk(str(tmp_path))
        for name in names
        if name.endswith(".tmp")
    ]
    assert leftovers == []


def test_two_stores_sharing_one_disk_dir_do_not_corrupt(tmp_path, analyzed):
    """Satellite criterion: concurrent writers against one directory are safe."""
    from concurrent.futures import ThreadPoolExecutor

    lattice = analyzed.display.lattice
    summary = _summary_for(analyzed, "total")
    first = SummaryStore(capacity=64, cache_dir=str(tmp_path))
    second = SummaryStore(capacity=64, cache_dir=str(tmp_path))
    keys = [f"shared{i}" for i in range(24)]

    def hammer(store):
        ok = 0
        for _ in range(3):
            for key in keys:
                store.put(key, summary)
                if store.get(key, lattice) is not None:
                    ok += 1
        return ok

    with ThreadPoolExecutor(max_workers=4) as pool:
        results = list(pool.map(hammer, [first, second, first, second]))
    assert all(count == 3 * len(keys) for count in results)

    # A third store sees every entry intact -- nothing truncated, nothing
    # quarantined.
    reader = SummaryStore(capacity=64, cache_dir=str(tmp_path))
    for key in keys:
        loaded = reader.get(key, lattice)
        assert loaded is not None
        assert str(loaded.procedures["total"].scheme) == str(
            summary.procedures["total"].scheme
        )
    assert reader.stats.quarantined == 0


def test_shared_disk_dir_across_services(tmp_path, analyzed):
    """Two AnalysisServices pointed at one store dir reuse each other's work."""
    from repro.service import AnalysisService, ServiceConfig

    source = compile_c(ALLOCATOR).program
    first = AnalysisService(ServiceConfig(cache_dir=str(tmp_path)))
    cold = first.analyze(source)
    assert cold.stats["sccs_solved"] > 0

    second = AnalysisService(ServiceConfig(cache_dir=str(tmp_path)))
    warm = second.analyze(compile_c(ALLOCATOR).program)
    assert warm.stats["sccs_solved"] == 0, "all SCCs served from the shared disk tier"
    assert warm.report() == cold.report()
