"""Conformance suite for the pluggable summary-store backends.

One parametrized battery runs against every persistent tier the store
supports -- none (memory-only), disk, and the fleet's socket-served daemon --
so a new backend inherits its behavioural contract by adding one fixture row:
round-tripping, cross-instance visibility, hit/miss accounting on the shared
:class:`StoreStats` record, and safety under concurrent get/admit.
"""

import json
import os
import threading

import pytest

from repro.fleet.storeserver import SummaryStoreServer
from repro.service.store import (
    STORE_FORMAT,
    DiskStoreBackend,
    SocketStoreBackend,
    SummaryStore,
    make_backend,
)

BACKENDS = ["memory", "disk", "socket"]


def _payload(tag="x"):
    return {"format": STORE_FORMAT, "members": [tag], "procedures": {}}


@pytest.fixture(scope="module")
def store_daemon():
    with SummaryStoreServer(port=0) as daemon:
        yield daemon


@pytest.fixture(params=BACKENDS)
def store_env(request, tmp_path, store_daemon):
    """(kind, make_store) where make_store() builds a fresh SummaryStore
    facade over the *same* persistent tier each time it is called."""
    kind = request.param
    if kind == "memory":
        yield kind, lambda: SummaryStore(capacity=64)
    elif kind == "disk":
        yield kind, lambda: SummaryStore(capacity=64, cache_dir=str(tmp_path / "tier"))
    else:
        daemon = SummaryStoreServer(port=0).start()
        try:
            yield kind, lambda: SummaryStore(capacity=64, store_addr=daemon.address)
        finally:
            daemon.close()


class TestBackendConformance:
    def test_kind_is_reported(self, store_env):
        kind, make = store_env
        store = make()
        assert store.backend_kind == kind
        store.close()

    def test_round_trip_within_one_instance(self, store_env):
        _, make = store_env
        store = make()
        assert store.get_payload("k" * 64) is None
        store.admit_payload("k" * 64, _payload("a"))
        assert store.get_payload("k" * 64) == _payload("a")
        assert ("k" * 64) in store
        store.close()

    def test_cross_instance_visibility(self, store_env):
        kind, make = store_env
        writer = make()
        writer.admit_payload("c" * 64, _payload("shared"))
        writer.close()
        reader = make()
        found = reader.get_payload("c" * 64)
        if kind == "memory":
            assert found is None  # memory-only stores are per-instance by design
        else:
            assert found == _payload("shared")
        reader.close()

    def test_stats_accounting(self, store_env):
        kind, make = store_env
        store = make()
        store.get_payload("m" * 64)
        assert store.stats.misses == 1
        store.admit_payload("m" * 64, _payload())
        assert store.stats.puts == 1
        store.get_payload("m" * 64)
        assert store.stats.hits == 1
        assert store.stats.memory_hits == 1  # served from the LRU, not the tier
        store.close()
        if kind == "memory":
            return
        # A fresh facade over the same tier records the tier-specific counter
        # and promotes the entry into its own memory tier.
        fresh = make()
        assert fresh.get_payload("m" * 64) == _payload()
        tier_counter = (
            fresh.stats.remote_hits if kind == "socket" else fresh.stats.disk_hits
        )
        assert tier_counter == 1
        assert fresh.stats.memory_hits == 0
        fresh.get_payload("m" * 64)
        assert fresh.stats.memory_hits == 1  # promotion worked
        fresh.close()

    def test_concurrent_get_admit(self, store_env):
        _, make = store_env
        store = make()
        errors = []

        def worker(tag):
            try:
                for i in range(30):
                    key = f"{tag}{i % 7}".ljust(64, "f")
                    store.admit_payload(key, _payload(f"{tag}{i}"))
                    got = store.get_payload(key)
                    assert got is not None and got["format"] == STORE_FORMAT
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in "abcd"]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        store.close()


# ---------------------------------------------------------------------------
# Backend-specific behaviour
# ---------------------------------------------------------------------------


def test_make_backend_precedence(tmp_path, store_daemon):
    """store_addr wins over cache_dir: fleet shards must share, not shadow."""
    backend = make_backend(
        cache_dir=str(tmp_path / "d"), store_addr=store_daemon.address
    )
    assert isinstance(backend, SocketStoreBackend)
    backend.close()
    assert isinstance(make_backend(cache_dir=str(tmp_path / "d")), DiskStoreBackend)
    assert make_backend() is None


def test_disk_backend_quarantines_corruption(tmp_path):
    store = SummaryStore(capacity=8, cache_dir=str(tmp_path))
    store.admit_payload("q" * 64, _payload())
    path = store._disk_path("q" * 64)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{ not json")
    fresh = SummaryStore(capacity=8, cache_dir=str(tmp_path))
    assert fresh.get_payload("q" * 64) is None
    assert fresh.stats.quarantined == 1
    assert os.path.exists(path + ".corrupt") and not os.path.exists(path)


def test_socket_backend_degrades_when_daemon_dies():
    daemon = SummaryStoreServer(port=0).start()
    store = SummaryStore(capacity=8, store_addr=daemon.address)
    store.admit_payload("d" * 64, _payload())
    daemon.close()
    # With the daemon gone, tier reads degrade to counted misses -- they must
    # never raise into the analysis that was merely trying to reuse work.
    store.clear()
    assert store.get_payload("d" * 64) is None
    assert store.stats.remote_errors >= 1
    store.close()


def test_socket_backend_rejects_format_skew(store_daemon):
    store = SummaryStore(capacity=8, store_addr=store_daemon.address)
    # A payload without the format stamp is refused by the daemon (error
    # reply -> degrade) and must never come back on get.
    store.backend.put("s" * 64, {"members": ["x"]})
    store.clear()
    assert store.get_payload("s" * 64) is None
    store.close()


def test_socket_backend_refuses_non_store_server():
    """The handshake must reject a socket that is not a store daemon."""
    import socket as socket_module

    listener = socket_module.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    def fake_server():
        conn, _ = listener.accept()
        conn.recv(1024)
        conn.sendall(json.dumps({"server": "imposter"}).encode() + b"\n")
        conn.close()

    thread = threading.Thread(target=fake_server, daemon=True)
    thread.start()
    with pytest.raises(OSError):
        SocketStoreBackend(f"127.0.0.1:{port}", timeout=5.0)
    thread.join(timeout=5)
    listener.close()


def test_store_daemon_snapshot_counts_requests(store_daemon):
    store = SummaryStore(capacity=8, store_addr=store_daemon.address)
    store.admit_payload("r" * 64, _payload())
    remote = store.backend.remote_stats()
    assert remote["entries"] >= 1
    assert remote["requests"] >= 2  # ping handshake + put at minimum
    store.close()
