"""Incremental driver: warm-cache identity, exact invalidation cones."""

import pytest

from repro import analyze_program
from repro.frontend import compile_c
from repro.ir.instructions import Nop
from repro.ir.program import Procedure, Program
from repro.service import AnalysisService, IncrementalSession, ServiceConfig

# A call DAG with a diamond and an unrelated component:
#
#   main -> helper -> leaf        (chain)
#   main -> other                 (second callee)
#   standalone                    (independent)
SOURCE = """
struct box { int value; int fd; };

int leaf(const struct box * b) {
    return b->value;
}

int helper(const struct box * b) {
    return leaf(b) + 1;
}

int other(int x) {
    return x * 2;
}

int main_entry(struct box * b, int x) {
    return helper(b) + other(x);
}

int standalone(int a, int b) {
    return a - b;
}
"""


def _program():
    return compile_c(SOURCE).program


def _edit(program, name):
    """A copy of ``program`` with one appended nop in procedure ``name``."""
    edited = Program(
        procedures=dict(program.procedures),
        externs=set(program.externs),
        globals=dict(program.globals),
    )
    victim = edited.procedures[name]
    edited.procedures[name] = Procedure(
        name=name, instructions=list(victim.instructions) + [Nop()]
    )
    return edited


def test_warm_cache_zero_solves_and_identical_output():
    program = _program()
    baseline = analyze_program(program)

    service = AnalysisService()
    cold = service.analyze(program)
    warm = service.analyze(program)

    assert cold.stats["sccs_solved"] == cold.stats["scc_count"]
    assert warm.stats["sccs_solved"] == 0
    assert warm.stats["sccs_cached"] == warm.stats["scc_count"]

    # String-equal signatures across plain pipeline, cold service, warm service.
    for name in baseline.functions:
        assert cold.signature(name) == baseline.signature(name)
        assert warm.signature(name) == baseline.signature(name)
    assert cold.report() == baseline.report()
    assert warm.report() == baseline.report()
    # Schemes survive the serialization round trip verbatim.
    for name in baseline.functions:
        assert str(warm.scheme(name)) == str(baseline.scheme(name))


def test_editing_one_procedure_resolves_exactly_its_cone():
    program = _program()
    session = IncrementalSession(AnalysisService())
    session.analyze(program)

    edited = _edit(program, "helper")
    types = session.analyze(edited)

    # helper changed: helper itself and its transitive caller must re-solve;
    # leaf, other and standalone must come from the cache.
    assert types.stats["invalidated_procedures"] == ["helper", "main_entry"]
    assert types.stats["solved_procedures"] == ["helper", "main_entry"]
    assert set(types.stats["cached_procedures"]) == {"leaf", "other", "standalone"}

    # Editing the root only re-solves the root.
    edited2 = _edit(edited, "main_entry")
    types2 = session.analyze(edited2)
    assert types2.stats["solved_procedures"] == ["main_entry"]

    # Editing the leaf re-solves the whole chain but not the bystanders.
    edited3 = _edit(edited2, "leaf")
    types3 = session.analyze(edited3)
    assert types3.stats["invalidated_procedures"] == ["helper", "leaf", "main_entry"]
    assert types3.stats["solved_procedures"] == ["helper", "leaf", "main_entry"]
    assert set(types3.stats["cached_procedures"]) == {"other", "standalone"}


def test_incremental_results_match_cold_analysis_of_edited_program():
    program = _program()
    session = IncrementalSession(AnalysisService())
    session.analyze(program)

    edited = _edit(program, "helper")
    incremental = session.analyze(edited)
    cold = analyze_program(edited)

    assert incremental.report() == cold.report()
    for name in cold.functions:
        assert incremental.signature(name) == cold.signature(name)
        assert str(incremental.scheme(name)) == str(cold.scheme(name))


def test_recursive_scc_is_cached_as_a_unit():
    source = """
    struct LL { struct LL * next; int handle; };

    int walk(const struct LL * node) {
        if (node == NULL) {
            return 0;
        }
        return 1 + walk(node->next);
    }

    int use(const struct LL * head) {
        return walk(head);
    }
    """
    program = compile_c(source).program
    service = AnalysisService()
    cold = service.analyze(program)
    warm = service.analyze(program)
    assert warm.stats["sccs_solved"] == 0
    assert warm.report() == cold.report()


def test_disk_backed_store_warm_across_services(tmp_path):
    program = _program()
    cold_service = AnalysisService(ServiceConfig(cache_dir=str(tmp_path)))
    cold = cold_service.analyze(program)

    # A brand-new service (fresh memory tier) warm-starts from disk.
    warm_service = AnalysisService(ServiceConfig(cache_dir=str(tmp_path)))
    warm = warm_service.analyze(program)
    assert warm.stats["sccs_solved"] == 0
    assert warm.report() == cold.report()


def test_incremental_session_requires_store():
    with pytest.raises(ValueError):
        IncrementalSession(AnalysisService(ServiceConfig(use_cache=False)))


def test_stage_timings_flow_through_service():
    """Cold analyses carry a per-stage SolveStats record; warm ones report zero work."""
    program = _program()
    service = AnalysisService()
    cold = service.analyze(program)

    stage = cold.stage_seconds
    assert stage["sccs_timed"] == cold.stats["scc_count"]
    assert stage["total_seconds"] == pytest.approx(
        stage["graph_seconds"]
        + stage["saturate_seconds"]
        + stage["simplify_seconds"]
        + stage["sketch_seconds"]
    )
    assert stage["sketch_seconds"] > 0.0
    assert stage["graph_nodes"] > 0 and stage["graph_edges"] > 0

    warm = service.analyze(program)
    warm_stage = warm.stage_seconds
    assert warm_stage["sccs_timed"] == 0
    assert warm_stage["total_seconds"] == 0.0


def test_stage_timings_cover_only_the_invalidation_cone():
    """After an edit, stage counters reflect the re-solved SCCs, not the program."""
    program = _program()
    session = IncrementalSession()
    session.analyze(program)

    edited = _edit(program, "other")  # invalidates other + main_entry only
    types = session.analyze(edited)
    stage = types.stage_seconds
    assert stage["sccs_timed"] == types.stats["sccs_solved"]
    assert 0 < stage["sccs_timed"] < types.stats["scc_count"]


def test_analyze_program_accepts_service_objects():
    program = _program()
    baseline = analyze_program(program)

    service = AnalysisService()
    analyze_program(program, service=service)
    warm = analyze_program(program, service=service)
    assert warm.stats["sccs_solved"] == 0
    assert warm.report() == baseline.report()

    configured = analyze_program(program, service=ServiceConfig(parallel=True, use_cache=False))
    assert configured.report() == baseline.report()
