"""Wave scheduler: levelling invariants and serial/parallel equivalence."""

from repro.frontend import compile_c
from repro.ir.asmparser import parse_program
from repro.ir.callgraph import CallGraph
from repro.service import AnalysisService, ServiceConfig, WaveScheduler
from repro.service.scheduler import ScheduleStats


def _asm_diamond():
    return parse_program(
        """
        leaf1:
            mov eax, [esp+4]
            ret
        leaf2:
            mov eax, [esp+4]
            ret
        mid1:
            mov eax, [esp+4]
            push eax
            call leaf1
            add esp, 4
            ret
        mid2:
            mov eax, [esp+4]
            push eax
            call leaf2
            add esp, 4
            ret
        top:
            mov eax, [esp+4]
            push eax
            call mid1
            add esp, 4
            push eax
            call mid2
            add esp, 4
            ret
        """
    )


def test_wave_levelling_respects_dependencies():
    graph = CallGraph.from_program(_asm_diamond())
    waves = graph.scc_waves()
    wave_of = {}
    for level, wave in enumerate(waves):
        for scc in wave:
            for name in scc:
                wave_of[name] = level
    # Every callee strictly below its caller.
    for caller, callees in graph.edges.items():
        for callee in callees:
            assert wave_of[callee] < wave_of[caller]
    assert wave_of["leaf1"] == wave_of["leaf2"] == 0
    assert wave_of["mid1"] == wave_of["mid2"] == 1
    assert wave_of["top"] == 2
    assert [len(w) for w in waves] == [2, 2, 1]


def test_wave_levelling_handles_cycles():
    program = parse_program(
        """
        a:
            call b
            ret
        b:
            call a
            ret
        c:
            call a
            ret
        """
    )
    graph = CallGraph.from_program(program)
    waves = graph.scc_waves()
    assert [sorted(scc) for scc in waves[0]] == [["a", "b"]]
    assert waves[1] == [["c"]]


def test_scheduler_is_deterministic_and_parallel_safe():
    waves = [[["a"], ["b"], ["c"]], [["d"]]]

    def solve(scc):
        return {name: name.upper() for name in scc}

    serial, serial_stats = WaveScheduler(parallel=False).run(waves, solve)
    parallel, parallel_stats = WaveScheduler(parallel=True, max_workers=4).run(waves, solve)
    assert [scc for scc, _ in serial] == [scc for scc, _ in parallel]
    assert [r for _, r in serial] == [r for _, r in parallel]
    assert serial_stats.wave_widths == parallel_stats.wave_widths == [3, 1]
    assert not serial_stats.parallel and parallel_stats.parallel
    assert len(parallel_stats.scc_seconds) == 4


def test_after_wave_runs_between_waves():
    waves = [[["a"], ["b"]], [["c"]]]
    published = []

    def solve(scc):
        # The second wave must observe the first wave's publication.
        if scc == ["c"]:
            assert set(published) == {"a", "b"}
        return scc[0]

    def publish(wave_results):
        published.extend(result for _, result in wave_results)

    WaveScheduler(parallel=True, max_workers=2).run(waves, solve, publish)
    assert published == ["a", "b", "c"]


def test_parallel_service_matches_serial_service():
    source = """
    struct pair { int first; int second; };

    int get_first(const struct pair * p) { return p->first; }
    int get_second(const struct pair * p) { return p->second; }
    int sum_pair(const struct pair * p) { return get_first(p) + get_second(p); }
    int scale(int x) { return x * 3; }
    int entry(struct pair * p, int x) { return sum_pair(p) + scale(x); }
    """
    program = compile_c(source).program
    serial = AnalysisService(ServiceConfig(use_cache=False, parallel=False)).analyze(program)
    parallel = AnalysisService(ServiceConfig(use_cache=False, parallel=True, max_workers=4)).analyze(
        program
    )
    assert parallel.report() == serial.report()
    for name in serial.functions:
        assert parallel.signature(name) == serial.signature(name)
    assert parallel.stats["max_wave_width"] >= 2


def test_schedule_stats_shape():
    stats = ScheduleStats(wave_widths=[3, 2, 1], parallel=True)
    as_stats = stats.as_stats()
    assert as_stats["wave_count"] == 3
    assert as_stats["max_wave_width"] == 3
    assert abs(as_stats["mean_wave_width"] - 2.0) < 1e-9


def test_executor_strategies_and_legacy_parallel_spelling():
    import pytest as _pytest

    assert WaveScheduler().executor == "serial"
    assert WaveScheduler(parallel=True).executor == "threads"
    assert WaveScheduler(executor="processes").parallel
    with _pytest.raises(ValueError):
        WaveScheduler(executor="fibers")


def test_processes_without_a_remote_runner_degrades_to_serial():
    waves = [[["a"], ["b"]], [["c"]]]
    results, stats = WaveScheduler(executor="processes").run(
        waves, lambda scc: scc[0].upper()
    )
    assert [r for _, r in results] == ["A", "B", "C"]
    assert stats.executor == "serial" and not stats.parallel


def test_remote_runner_drives_wide_waves_and_requeue_counts_surface():
    class FakeRunner:
        def __init__(self):
            self.waves = []
            self.worker_failed = 2
            self.requeued_sccs = ["b"]

        def solve_wave(self, wave, fallback):
            self.waves.append([list(scc) for scc in wave])
            return [(scc, fallback(scc), 0.0) for scc in wave]

    runner = FakeRunner()
    waves = [[["a"], ["b"]], [["c"]]]
    results, stats = WaveScheduler(executor="processes").run(
        waves, lambda scc: scc[0].upper(), remote=runner
    )
    # Wide wave went to the runner; the single-SCC wave stayed in-process.
    assert runner.waves == [[["a"], ["b"]]]
    assert [r for _, r in results] == ["A", "B", "C"]
    assert stats.executor == "processes"
    assert stats.worker_failed == 2 and stats.requeued_sccs == ["b"]
