"""Process-pool backend: codec fidelity, byte-identity, crash requeue.

Three layers of guarantees:

* the **codec** round-trips solver inputs and outputs byte-identically
  (property-tested: encode -> decode -> re-encode is the identity on the
  canonical JSON);
* the **backend** produces results byte-identical to a serial
  ``analyze_program`` run (the acceptance bar for shipping work across
  process boundaries);
* **failure injection** -- a worker hard-crash (``os._exit``) and a soft
  worker exception both requeue the affected SCCs on the in-process path,
  counted by the typed ``worker_failed`` stat, without changing any result.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import analyze_program
from repro.core.constraints import ConstraintSet, parse_constraints
from repro.core.intern import StringTable
from repro.core.lattice import TypeLattice, default_lattice
from repro.core.solver import (
    ProcedureTypingInput,
    SolveStats,
    Solver,
    SolverConfig,
)
from repro.core.variables import parse_dtv
from repro.frontend import compile_c
from repro.ir.callgraph import CallGraph
from repro.service import AnalysisService, ServiceConfig, choose_executor
from repro.service import procpool
from repro.service.store import (
    SCCSummary,
    deserialize_summary,
    environment_fingerprint,
    program_fingerprints,
    scc_summary_keys,
    serialize_summary,
    summarize_scc,
)
from repro.typegen.abstract_interp import generate_program_constraints
from repro.typegen.externs import ensure_lattice_tags, extern_schemes, standard_externs

# A program with a wide first wave (every helper is a leaf) so the process
# backend actually dispatches chunks, plus a diamond on top.
SOURCE = """
struct box { int value; int fd; };

int leaf_a(const struct box * b) { return b->value; }
int leaf_b(const struct box * b) { return b->fd; }
int leaf_c(int x) { return x * 2; }
int leaf_d(int x, int y) { return x - y; }
int leaf_e(int x) { return x + 7; }

int mid_one(const struct box * b, int x) { return leaf_a(b) + leaf_c(x); }
int mid_two(const struct box * b, int y) { return leaf_b(b) + leaf_d(y, 3); }

int top(struct box * b, int x) { return mid_one(b, x) + mid_two(b, x) + leaf_e(x); }
"""


def _program():
    return compile_c(SOURCE).program


def _canonical_bytes(types):
    """The timing-free canonical JSON of an analysis (byte-comparable)."""
    payload = types.to_json()
    return json.dumps(
        {
            "functions": payload["functions"],
            "structs": payload["structs"],
            "report": payload["report"],
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")


# ---------------------------------------------------------------------------
# The acceptance bar: byte-identical to serial analyze_program
# ---------------------------------------------------------------------------


def test_process_backend_byte_identical_to_serial_analyze_program():
    program = _program()
    baseline = analyze_program(program)
    with AnalysisService(
        ServiceConfig(use_cache=False, executor="processes", max_workers=2)
    ) as service:
        types = service.analyze(program)
        warm = service.analyze(program)  # warm pool, same answer
    assert types.stats["executor"] == "processes"
    assert types.stats["worker_failed"] == 0
    assert _canonical_bytes(types) == _canonical_bytes(baseline)
    assert _canonical_bytes(warm) == _canonical_bytes(baseline)
    # Real workers solved real SCCs and reported their per-stage timings.
    worker_stats = types.stats["worker_stats"]
    assert worker_stats, "expected at least one worker to report SolveStats"
    assert sum(entry["sccs_timed"] for entry in worker_stats.values()) > 0


def test_process_backend_with_store_matches_and_caches(tmp_path):
    program = _program()
    baseline = analyze_program(program)
    with AnalysisService(
        ServiceConfig(cache_dir=str(tmp_path), executor="processes", max_workers=2)
    ) as service:
        cold = service.analyze(program)
        warm = service.analyze(program)
    assert _canonical_bytes(cold) == _canonical_bytes(baseline)
    assert _canonical_bytes(warm) == _canonical_bytes(baseline)
    # The second run is served from the parent store: no dispatch at all.
    assert warm.stats["sccs_solved"] == 0
    # Workers published to the shared disk tier; entries exist on disk.
    assert any(tmp_path.rglob("*.json"))


# ---------------------------------------------------------------------------
# Failure injection: crash and soft failure both requeue in-process
# ---------------------------------------------------------------------------


def test_worker_crash_requeues_sccs_in_process(monkeypatch):
    program = _program()
    baseline = analyze_program(program)
    monkeypatch.setenv(procpool.CRASH_ENV, "leaf_c")
    with AnalysisService(
        ServiceConfig(use_cache=False, executor="processes", max_workers=2)
    ) as service:
        types = service.analyze(program)
    assert types.stats["worker_failed"] >= 1
    assert any("leaf_c" in entry for entry in types.stats["requeued_sccs"])
    # The typed stat also flows through the SolveStats record.
    assert types.stage_seconds["worker_failed"] == types.stats["worker_failed"]
    # Degradation is graceful: every result still byte-identical.
    assert _canonical_bytes(types) == _canonical_bytes(baseline)


def test_soft_worker_failure_requeues_without_killing_the_pool(monkeypatch):
    program = _program()
    baseline = analyze_program(program)
    monkeypatch.setenv(procpool.FAIL_ENV, "leaf_d")
    with AnalysisService(
        ServiceConfig(use_cache=False, executor="processes", max_workers=2)
    ) as service:
        types = service.analyze(program)
        pool = service._procpool
        assert pool is not None and pool.pools_built == 1  # survived the exception
        assert pool.chunks_failed >= 1
    assert types.stats["worker_failed"] >= 1
    assert _canonical_bytes(types) == _canonical_bytes(baseline)


# ---------------------------------------------------------------------------
# Codec: property-tested byte-identical round trips (no subprocesses)
# ---------------------------------------------------------------------------

_VARS = ["f", "g", "h"]
_SUFFIXES = ["", ".load", ".store", ".load.sigma32@0", ".in_stack0", ".out_eax"]


@st.composite
def _typing_input(draw):
    lines = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        left = draw(st.sampled_from(_VARS)) + draw(st.sampled_from(_SUFFIXES))
        right = draw(st.sampled_from(_VARS)) + draw(st.sampled_from(_SUFFIXES))
        if left != right:
            lines.append(f"{left} <= {right}")
    formal_ins = tuple(
        parse_dtv(f"f.in_stack{4 * index}")
        for index in range(draw(st.integers(min_value=0, max_value=2)))
    )
    formal_outs = (parse_dtv("f.out_eax"),) if draw(st.booleans()) else ()
    return ProcedureTypingInput(
        name="f",
        constraints=parse_constraints(lines),
        formal_ins=formal_ins,
        formal_outs=formal_outs,
    )


@settings(max_examples=50, deadline=None)
@given(_typing_input())
def test_input_codec_round_trip_is_byte_identical(proc):
    table = StringTable()
    entry = procpool.encode_input(proc, table.intern)
    encoded = json.dumps({"e": entry, "t": table.to_list()}, sort_keys=True)
    wire = json.loads(encoded)
    reader = procpool._TableReader(wire["t"])
    decoded = procpool.decode_input("f", wire["e"], reader)
    assert decoded.constraints == proc.constraints
    assert decoded.formal_ins == proc.formal_ins
    assert decoded.formal_outs == proc.formal_outs
    re_table = StringTable()
    re_entry = procpool.encode_input(decoded, re_table.intern)
    re_encoded = json.dumps({"e": re_entry, "t": re_table.to_list()}, sort_keys=True)
    assert re_encoded == encoded


@settings(max_examples=25, deadline=None)
@given(_typing_input())
def test_solve_scc_results_round_trip_byte_identical(proc):
    """A solved SCC's summary survives the procpool codec byte-for-byte.

    ``solve -> serialize -> (wire) -> deserialize -> re-serialize`` must be
    the identity on the canonical JSON -- the exact property the parent
    relies on when it admits worker payloads into the summary store.
    """
    lattice = ensure_lattice_tags(default_lattice())
    solver = Solver(lattice, extern_schemes(standard_externs()), SolverConfig())
    results = solver.solve_scc(["f"], {"f": proc}, {}, stats=SolveStats())
    payload = serialize_summary(summarize_scc(["f"], results, {}))
    wire = json.dumps(payload, sort_keys=True, separators=(",", ":"))

    summary = deserialize_summary(json.loads(wire), lattice)
    re_serialized = serialize_summary(
        SCCSummary(members=summary.members, procedures=summary.procedures)
    )
    assert json.dumps(re_serialized, sort_keys=True, separators=(",", ":")) == wire

    # And the decoded result is semantically the solved result.
    rebuilt = summary.procedures["f"].to_result()
    assert str(rebuilt.scheme) == str(results["f"].scheme)
    assert {str(d): s.to_json() for d, s in rebuilt.formal_in_sketches.items()} == {
        str(d): s.to_json() for d, s in results["f"].formal_in_sketches.items()
    }


def test_environment_codec_round_trips_lattice_and_externs():
    lattice = ensure_lattice_tags(default_lattice())
    lattice.add_element("HANDLE", ["uint"])
    env_json = procpool.encode_environment(
        lattice, standard_externs(), SolverConfig(), cache_dir=None
    )
    env = json.loads(env_json)
    rebuilt = TypeLattice.from_json(env["lattice"])
    assert rebuilt.fingerprint() == lattice.fingerprint()
    # Canonical: encoding the rebuilt lattice is byte-identical.
    assert json.dumps(rebuilt.to_json(), sort_keys=True) == json.dumps(
        lattice.to_json(), sort_keys=True
    )


# ---------------------------------------------------------------------------
# The worker function, run in-process: disk-tier warm reuse
# ---------------------------------------------------------------------------


def test_worker_reuses_shared_disk_tier_without_resolving(tmp_path):
    """A worker whose store already holds an SCC's key returns it verbatim."""
    program = _program()
    # Populate the shared disk tier with a serial cached run.
    with AnalysisService(ServiceConfig(cache_dir=str(tmp_path))) as service:
        service.analyze(program)
        lattice = service.lattice
        externs = service.extern_table
        config = service.config.solver

        inputs = generate_program_constraints(program, externs)
        callgraph = CallGraph.from_typing_inputs(inputs)
        sccs = callgraph.sccs_bottom_up()
        keys = scc_summary_keys(
            sccs,
            callgraph.edges,
            program_fingerprints(program),
            environment_fingerprint(lattice, externs, config),
        )

    # Impersonate a worker in this process: same env, same disk tier.
    env_json = procpool.encode_environment(lattice, externs, config, str(tmp_path))
    procpool._init_worker(env_json)
    leaf_sccs = [scc for scc in sccs if scc == ["leaf_a"] or scc == ["leaf_c"]]
    task = procpool.encode_task(leaf_sccs, inputs, {}, keys)
    reply = json.loads(procpool._worker_solve_chunk(task))
    assert reply["pid"] == os.getpid()
    for entry in reply["results"]:
        assert entry["from_disk"], "expected a shared-disk-tier hit, not a re-solve"
        assert entry["stats"]["sccs_timed"] == 0  # cache hits contribute no core work


def test_worker_rejects_mismatched_task_format():
    with pytest.raises(RuntimeError):
        procpool._worker_solve_chunk(json.dumps({"format": "bogus", "sccs": []}))


# ---------------------------------------------------------------------------
# Executor selection and pool lifecycle
# ---------------------------------------------------------------------------


def test_choose_executor_by_workload_and_cpus():
    wide = [[["p%d" % i] for i in range(32)]]
    narrow = [[["a"], ["b"]], [["c"]]]
    assert choose_executor(wide, cpu_count=1) == "serial"
    assert choose_executor(wide, cpu_count=8) == "processes"
    assert choose_executor(narrow, cpu_count=8) == "serial"
    assert choose_executor([], cpu_count=8) == "serial"


def test_unknown_executor_is_rejected():
    with pytest.raises(ValueError):
        AnalysisService(ServiceConfig(executor="fibers"))


def test_environment_change_rebuilds_the_pool():
    service = AnalysisService(ServiceConfig(use_cache=False, executor="processes"))
    try:
        first = service._ensure_procpool()
        assert service._ensure_procpool() is first  # stable while env is stable
        service.lattice.add_element("#Widget", ["int"])
        second = service._ensure_procpool()
        assert second is not first
        assert second.env_json != first.env_json
    finally:
        service.close()
        assert service._procpool is None
        service.close()  # idempotent
