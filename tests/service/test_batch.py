"""Batch API: corpus analysis over one shared summary store."""

from repro import analyze_corpus, analyze_program
from repro.eval.harness import run_engine, run_suite_batched
from repro.eval.workloads import make_cluster
from repro.baselines import RetypdEngine
from repro.service import AnalysisService


def _cluster():
    return make_cluster(
        "batch_c", members=3, shared_functions=10, member_functions=4, seed=77
    )


def test_corpus_shares_summaries_across_cluster_members():
    workloads = _cluster()
    report = analyze_corpus({w.name: w.program for w in workloads})

    first, *rest = report
    assert first.cache_hits == 0  # empty store on the first member
    for member in rest:
        assert member.cache_hits > 0, "cluster members must reuse shared-library summaries"
    assert report.total_cache_hits > 0
    assert 0.0 < report.hit_rate < 1.0
    assert report.total_seconds > 0
    assert len(report) == len(workloads)


def test_corpus_results_match_standalone_analysis():
    workloads = _cluster()
    report = analyze_corpus({w.name: w.program for w in workloads})
    for workload in workloads:
        standalone = analyze_program(workload.program)
        assert report[workload.name].types.report() == standalone.report()


def test_corpus_per_program_stats():
    workloads = _cluster()
    report = analyze_corpus([(w.name, w.program) for w in workloads])
    for member in report:
        assert member.procedures > 0
        assert member.wave_widths, "wave widths must be recorded per program"
        assert member.max_wave_width >= 1
        assert member.seconds >= 0
    summary = report.summary()
    assert "TOTAL" in summary and workloads[0].name in summary
    assert report.store_stats["puts"] > 0


def test_warm_corpus_rerun_is_all_hits():
    workloads = _cluster()
    service = AnalysisService()
    analyze_corpus({w.name: w.program for w in workloads}, service=service)
    warm = analyze_corpus({w.name: w.program for w in workloads}, service=service)
    assert warm.total_cache_misses == 0
    assert warm.hit_rate == 1.0


def test_harness_batched_suite_matches_engine_path():
    workloads = _cluster()
    batched = run_suite_batched(workloads)
    plain = run_engine(RetypdEngine(), workloads)

    assert set(batched.per_program) == set(plain.per_program)
    for name in plain.per_program:
        assert batched.per_program[name].summary() == plain.per_program[name].summary()
    assert batched.overall() == plain.overall()
    assert batched.batch is not None
    assert batched.batch.total_cache_hits > 0


def test_corpus_on_the_process_backend_matches_serial():
    """analyze_corpus(config=...) routes the executor choice through; the
    internally-created service keeps one warm pool across members and
    releases it when the corpus finishes."""
    from repro.service import ServiceConfig

    workloads = _cluster()
    serial = analyze_corpus({w.name: w.program for w in workloads})
    parallel = analyze_corpus(
        {w.name: w.program for w in workloads},
        config=ServiceConfig(executor="processes", max_workers=2),
    )
    for workload in workloads:
        assert (
            parallel[workload.name].types.report()
            == serial[workload.name].types.report()
        )
    # Shared-library reuse still happens under the process backend.
    assert parallel.total_cache_hits > 0


def test_corpus_fanout_prewarms_every_program_and_stays_byte_identical():
    """Program-grain fan-out: workers solve whole programs and ship summaries
    plus typing inputs back; the parent replay must be byte-identical to the
    serial corpus run."""
    from repro.gen import result_fingerprint
    from repro.service import ServiceConfig
    from repro.service import batch as batch_mod

    workloads = _cluster()
    programs = {w.name: w.program for w in workloads}
    serial = analyze_corpus(programs)

    service = AnalysisService(ServiceConfig(executor="processes", max_workers=2))
    try:
        items = list(programs.items())
        assert batch_mod._use_corpus_fanout(service, items)
        prewarmed = batch_mod._prewarm_corpus(service, items)
        assert set(prewarmed) == set(programs)
        for workload in workloads:
            entry = prewarmed[workload.name]
            assert set(entry.inputs) == set(workload.program.procedures)
            assert entry.cache_hits + entry.cache_misses > 0
        report = analyze_corpus(programs, service=service)
    finally:
        service.close()
    for name in programs:
        assert result_fingerprint(report[name].types) == result_fingerprint(
            serial[name].types
        )


def test_corpus_fanout_falls_back_to_in_process_analysis(monkeypatch):
    """When fan-out brings back nothing usable (crashed workers, undecodable
    replies), every program silently takes the in-process path and the corpus
    result is still correct."""
    from repro.gen import result_fingerprint
    from repro.service import ServiceConfig, procpool

    workloads = _cluster()
    programs = {w.name: w.program for w in workloads}
    serial = analyze_corpus(programs)

    # An empty task: workers reply with zero program entries, so no program
    # gets prewarmed and analyze_corpus must fall back per program.
    real_encode = procpool.encode_corpus_task
    monkeypatch.setattr(procpool, "encode_corpus_task", lambda items: real_encode([]))
    report = analyze_corpus(
        programs, config=ServiceConfig(executor="processes", max_workers=2)
    )
    for name in programs:
        assert result_fingerprint(report[name].types) == result_fingerprint(
            serial[name].types
        )
